package slo

import (
	"bytes"
	"encoding/json"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
)

func mk(id, flow uint64, tenant pkt.TenantID, rank int64) *pkt.Packet {
	return &pkt.Packet{ID: id, Flow: flow, Tenant: tenant, Rank: rank, Size: 1000}
}

func TestNilWatchdogIsNoOp(t *testing.T) {
	var w *Watchdog
	var pw *PortWatch
	pw.OnEnqueue(0, mk(1, 0, 1, 5))
	pw.OnDequeue(0, mk(1, 0, 1, 5))
	pw.OnDrop(0, mk(1, 0, 1, 5), sched.CauseOverflow)
	w.OnDeliver(0, mk(1, 0, 1, 5))
	w.OnDrop(0, mk(1, 0, 1, 5), sched.CauseAdmission)
	w.Absorb(nil)
	if w.PortWatch() != nil {
		t.Error("nil watchdog handed out a port watch")
	}
	if w.Shard(0) != nil {
		t.Error("nil watchdog forked a shard child")
	}
	snap := w.Snapshot()
	if snap.State != StateOK || snap.Revision != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
}

func TestSamplingPredicate(t *testing.T) {
	w := New(Config{SampleN: 4, WindowNs: 1000})
	pw := w.PortWatch()
	// Flows 0, 4, 8 are sampled; 1, 2, 3 are not.
	for flow := uint64(0); flow < 9; flow++ {
		pw.OnEnqueue(10, mk(flow+1, flow, 1, 5))
	}
	if got := w.Snapshot().Global.SampledEnqueues; got != 3 {
		t.Errorf("sampled enqueues = %d, want 3 (flows 0, 4, 8)", got)
	}
	// SampleN = 1 samples everything.
	w1 := New(Config{SampleN: 1, WindowNs: 1000})
	pw1 := w1.PortWatch()
	for flow := uint64(0); flow < 9; flow++ {
		pw1.OnEnqueue(10, mk(flow+1, flow, 1, 5))
	}
	if got := w1.Snapshot().Global.SampledEnqueues; got != 9 {
		t.Errorf("SampleN=1 sampled enqueues = %d, want 9", got)
	}
}

func TestInversionDetection(t *testing.T) {
	w := New(Config{SampleN: 1, WindowNs: 1000})
	pw := w.PortWatch()
	// Queue ranks 10 and 50; dequeue rank 50 first — one inversion with
	// displacement 40.
	pw.OnEnqueue(0, mk(1, 0, 1, 10))
	pw.OnEnqueue(0, mk(2, 0, 1, 50))
	pw.OnDequeue(5, mk(2, 0, 1, 50))
	pw.OnDequeue(10, mk(1, 0, 1, 10))
	g := w.Snapshot().Global
	if g.Inversions != 1 {
		t.Fatalf("inversions = %d, want 1", g.Inversions)
	}
	if g.MaxDisplacement != 40 {
		t.Errorf("max displacement = %d, want 40", g.MaxDisplacement)
	}
	if g.InversionsPer10k != 5000 {
		t.Errorf("inversions per 10k = %g, want 5000 (1 of 2 dequeues)", g.InversionsPer10k)
	}
	// Displacement p99 lands in 40's log2 bucket (32, 64].
	if g.DisplacementP99 <= 32 || g.DisplacementP99 > 64 {
		t.Errorf("displacement p99 = %g, want in (32, 64]", g.DisplacementP99)
	}
	// In-order dequeues count no inversions.
	w2 := New(Config{SampleN: 1, WindowNs: 1000})
	pw2 := w2.PortWatch()
	pw2.OnEnqueue(0, mk(1, 0, 1, 10))
	pw2.OnEnqueue(0, mk(2, 0, 1, 50))
	pw2.OnDequeue(5, mk(1, 0, 1, 10))
	pw2.OnDequeue(10, mk(2, 0, 1, 50))
	if g := w2.Snapshot().Global; g.Inversions != 0 {
		t.Errorf("in-order dequeues counted %d inversions", g.Inversions)
	}
	// Equal ranks never invert (strict inequality — tie-order independent).
	w3 := New(Config{SampleN: 1, WindowNs: 1000})
	pw3 := w3.PortWatch()
	pw3.OnEnqueue(0, mk(1, 0, 1, 10))
	pw3.OnEnqueue(0, mk(2, 0, 1, 10))
	pw3.OnDequeue(5, mk(2, 0, 1, 10))
	if g := w3.Snapshot().Global; g.Inversions != 0 {
		t.Errorf("equal-rank dequeue counted %d inversions", g.Inversions)
	}
}

func TestDropDivergence(t *testing.T) {
	w := New(Config{SampleN: 1, WindowNs: 1000})
	pw := w.PortWatch()
	// Queue a bad packet (rank 90), then drop a good arrival (rank 5):
	// the ideal PIFO would have evicted rank 90 instead — divergence.
	pw.OnEnqueue(0, mk(1, 0, 1, 90))
	pw.OnDrop(5, mk(2, 0, 1, 5), sched.CauseOverflow)
	if g := w.Snapshot().Global; g.DropDiverged != 1 || g.SampledDrops != 1 {
		t.Errorf("diverged=%d drops=%d, want 1, 1", g.DropDiverged, g.SampledDrops)
	}
	// Evicting the worst queued packet is exactly what the ideal does —
	// no divergence (strict inequality again).
	w2 := New(Config{SampleN: 1, WindowNs: 1000})
	pw2 := w2.PortWatch()
	pw2.OnEnqueue(0, mk(1, 0, 1, 10))
	pw2.OnEnqueue(0, mk(2, 0, 1, 90))
	pw2.OnDrop(5, mk(2, 0, 1, 90), sched.CauseEvicted)
	if g := w2.Snapshot().Global; g.DropDiverged != 0 {
		t.Errorf("worst-eviction counted %d divergences", g.DropDiverged)
	}
	if pw2.ShadowLen() != 1 {
		t.Errorf("shadow length after eviction = %d, want 1", pw2.ShadowLen())
	}
}

func TestPerTenantSLIs(t *testing.T) {
	w := New(Config{
		SampleN:  1,
		WindowNs: 1000,
		Tenants:  map[pkt.TenantID]string{1: "pfabric", 2: "edf"},
		Entitlements: map[pkt.TenantID]float64{
			1: 0.75,
			2: 0.25,
		},
	})
	pw := w.PortWatch()
	// Tenant 1: delay 100ns; tenant 2: delay 3000ns.
	pw.OnEnqueue(0, mk(1, 0, 1, 10))
	pw.OnDequeue(100, mk(1, 0, 1, 10))
	pw.OnEnqueue(0, mk(2, 0, 2, 10))
	pw.OnDequeue(3000, mk(2, 0, 2, 10))
	// Deliveries: 3000 bytes tenant 1, 1000 bytes tenant 2.
	for i := uint64(0); i < 3; i++ {
		w.OnDeliver(100, mk(10+i, 0, 1, 0))
	}
	w.OnDeliver(100, mk(20, 0, 2, 0))
	w.OnDrop(200, mk(30, 0, 2, 0), sched.CauseAdmission)

	snap := w.Snapshot()
	if len(snap.Tenants) != 2 {
		t.Fatalf("tenant count = %d, want 2", len(snap.Tenants))
	}
	t1, t2 := snap.Tenants[0], snap.Tenants[1]
	if t1.Tenant != "pfabric" || t2.Tenant != "edf" {
		t.Fatalf("tenant order/names = %q, %q", t1.Tenant, t2.Tenant)
	}
	if t1.DelayP99Ns <= 64 || t1.DelayP99Ns > 128 {
		t.Errorf("pfabric delay p99 = %g, want in 100's bucket (64, 128]", t1.DelayP99Ns)
	}
	if t2.DelayP99Ns <= 2048 || t2.DelayP99Ns > 4096 {
		t.Errorf("edf delay p99 = %g, want in 3000's bucket (2048, 4096]", t2.DelayP99Ns)
	}
	if t1.AchievedShare != 0.75 || t2.AchievedShare != 0.25 {
		t.Errorf("achieved shares = %g, %g; want 0.75, 0.25", t1.AchievedShare, t2.AchievedShare)
	}
	if t1.EntitledShare != 0.75 || t2.EntitledShare != 0.25 {
		t.Errorf("entitled shares = %g, %g", t1.EntitledShare, t2.EntitledShare)
	}
	if t2.Drops["admission"] != 1 {
		t.Errorf("edf admission drops = %v, want 1", t2.Drops)
	}
	if len(t1.Drops) != 0 {
		t.Errorf("pfabric drops = %v, want none", t1.Drops)
	}
}

// fill drives inversions at a controlled rate: every sampled dequeue is
// an inversion when bad is true.
func fill(pw *PortWatch, start sim.Time, n int, bad bool) {
	id := uint64(start) * 1_000_000
	for i := 0; i < n; i++ {
		now := start + sim.Time(i)
		lowID, highID := id, id+1
		id += 2
		pw.OnEnqueue(now, mk(lowID, 0, 1, 10))
		pw.OnEnqueue(now, mk(highID, 0, 1, 50))
		if bad {
			pw.OnDequeue(now, mk(highID, 0, 1, 50))
			pw.OnDequeue(now, mk(lowID, 0, 1, 10))
		} else {
			pw.OnDequeue(now, mk(lowID, 0, 1, 10))
			pw.OnDequeue(now, mk(highID, 0, 1, 50))
		}
	}
}

func TestBurnRateStates(t *testing.T) {
	cfg := Config{SampleN: 1, WindowNs: 1000, ShortWindows: 5, LongWindows: 60}
	// Healthy traffic: everything in order → OK on every SLO.
	w := New(cfg)
	pw := w.PortWatch()
	fill(pw, 0, 500, false)
	snap := w.Snapshot()
	if snap.State != StateOK {
		t.Fatalf("healthy state = %s, want ok", snap.State)
	}
	if len(snap.Health) != 3 {
		t.Fatalf("health entries = %d, want 3", len(snap.Health))
	}
	// 50% inversions ≫ 10 × the 1% budget on both horizons → PAGE.
	w2 := New(cfg)
	pw2 := w2.PortWatch()
	fill(pw2, 0, 500, true)
	snap2 := w2.Snapshot()
	if snap2.State != StatePage {
		t.Fatalf("inverted state = %s, want page", snap2.State)
	}
	var inv SLOHealth
	for _, h := range snap2.Health {
		if h.Name == SLOInversions {
			inv = h
		}
	}
	if inv.State != StatePage {
		t.Errorf("inversion SLO state = %s, want page (burn %g/%g)",
			inv.State, inv.BurnShort, inv.BurnLong)
	}
	if inv.ShortRate != 0.5 || inv.LongRate != 0.5 {
		t.Errorf("inversion rates = %g/%g, want 0.5/0.5", inv.ShortRate, inv.LongRate)
	}
	// A long-healthy run with a short bad burst must NOT page: the long
	// horizon vetoes (multi-window guard). Bad burst confined to the
	// short horizon, healthy history filling the long one.
	w3 := New(cfg)
	pw3 := w3.PortWatch()
	fill(pw3, 0, 55_000/2, false)  // windows 0..27: healthy
	fill(pw3, 56_000, 2_000, true) // windows 56..57: all inversions
	snap3 := w3.Snapshot()
	for _, h := range snap3.Health {
		if h.Name == SLOInversions && h.State == StatePage {
			t.Errorf("short burst paged despite healthy long horizon (burn %g/%g)",
				h.BurnShort, h.BurnLong)
		}
	}
}

func TestWindowRingRetirement(t *testing.T) {
	// Ring of 4 windows of 1000ns. Events 10 windows apart: the old
	// window must fall out of the burn horizons but stay in cumulative
	// counters.
	w := New(Config{SampleN: 1, WindowNs: 1000, ShortWindows: 2, LongWindows: 4})
	pw := w.PortWatch()
	// Window 0: one inversion.
	pw.OnEnqueue(500, mk(1, 0, 1, 10))
	pw.OnEnqueue(500, mk(2, 0, 1, 50))
	pw.OnDequeue(600, mk(2, 0, 1, 50))
	pw.OnDequeue(700, mk(1, 0, 1, 10))
	// Window 10: one clean dequeue, pushing window 0 out of retention.
	pw.OnEnqueue(10_500, mk(3, 0, 1, 10))
	pw.OnDequeue(10_600, mk(3, 0, 1, 10))
	snap := w.Snapshot()
	// Cumulative counters keep the whole run.
	if snap.Global.SampledDequeues != 3 || snap.Global.Inversions != 1 {
		t.Errorf("cumulative deq=%d inv=%d, want 3, 1",
			snap.Global.SampledDequeues, snap.Global.Inversions)
	}
	// The burn horizons only see the live windows: 1 dequeue, 0 errors.
	for _, h := range snap.Health {
		if h.Name == SLOInversions && h.LongRate != 0 {
			t.Errorf("retired window leaked into burn horizon: %+v", h)
		}
	}
}

func TestShardAbsorbMatchesSingle(t *testing.T) {
	cfg := Config{SampleN: 1, WindowNs: 1000,
		Tenants: map[pkt.TenantID]string{1: "a", 2: "b"}}

	// Reference: one watchdog sees all events.
	single := New(cfg)
	sp := single.PortWatch()
	fill(sp, 0, 100, true)
	single.OnDeliver(50, mk(900, 0, 2, 0))
	single.OnDrop(60, mk(901, 0, 2, 0), sched.CauseFault)

	// Sharded: the same events split across two children, absorbed in
	// both orders.
	for _, order := range [][2]int{{0, 1}, {1, 0}} {
		parent := New(cfg)
		c0, c1 := parent.Shard(0), parent.Shard(1)
		p0 := c0.PortWatch()
		fill(p0, 0, 100, true)
		c1.OnDeliver(50, mk(900, 0, 2, 0))
		c1.OnDrop(60, mk(901, 0, 2, 0), sched.CauseFault)
		kids := [2]*Watchdog{c0, c1}
		parent.Absorb(kids[order[0]])
		parent.Absorb(kids[order[1]])

		got, err := json.Marshal(parent.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(single.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("absorb order %v: merged snapshot differs\n got: %s\nwant: %s",
				order, got, want)
		}
	}
}

func TestSnapshotRevisionAsETag(t *testing.T) {
	w := New(Config{SampleN: 1, WindowNs: 1000})
	pw := w.PortWatch()
	if w.Revision() != 0 {
		t.Fatalf("fresh revision = %d", w.Revision())
	}
	pw.OnEnqueue(0, mk(1, 0, 1, 10))
	r1 := w.Revision()
	pw.OnDequeue(5, mk(1, 0, 1, 10))
	r2 := w.Revision()
	if !(r1 > 0 && r2 > r1) {
		t.Errorf("revision not monotonic: %d, %d", r1, r2)
	}
	if snap := w.Snapshot(); snap.Revision != r2 {
		t.Errorf("snapshot revision = %d, want %d", snap.Revision, r2)
	}
}

func TestShadowCopiesNotAliased(t *testing.T) {
	// The shadow must hold copies: mutating (or recycling) the
	// simulator's packet after enqueue must not corrupt the mirror.
	w := New(Config{SampleN: 1, WindowNs: 1000})
	pw := w.PortWatch()
	p := mk(1, 0, 1, 10)
	pw.OnEnqueue(0, p)
	p.Rank = 9999 // simulator recycles the buffer
	p.ID = 77
	pw.OnDequeue(5, mk(2, 0, 1, 20)) // against shadow min: still 10
	if g := w.Snapshot().Global; g.Inversions != 1 || g.MaxDisplacement != 10 {
		t.Errorf("aliased shadow: inversions=%d maxDisp=%d, want 1, 10",
			g.Inversions, g.MaxDisplacement)
	}
}

func TestWriteReport(t *testing.T) {
	w := New(Config{SampleN: 1, WindowNs: 1000,
		Tenants:      map[pkt.TenantID]string{1: "pfabric"},
		Entitlements: map[pkt.TenantID]float64{1: 0.5}})
	pw := w.PortWatch()
	fill(pw, 0, 10, true)
	w.OnDrop(50, mk(500, 0, 1, 0), sched.CauseAdmission)
	var buf bytes.Buffer
	if err := WriteReport(&buf, w.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fidelity watchdog: PAGE", "inversion_rate",
		"queueing_delay", "pfabric", "admission=1", "entitled 0.500"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	w := New(Config{})
	cfg := w.Config()
	if cfg.SampleN != DefaultSampleN || cfg.WindowNs != DefaultWindowNs ||
		cfg.ShortWindows != DefaultShortWindows || cfg.LongWindows != DefaultLongWindows ||
		cfg.PageBurn != DefaultPageBurn {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	// Long horizon never shorter than short.
	w2 := New(Config{ShortWindows: 10, LongWindows: 3})
	if c := w2.Config(); c.LongWindows != 10 {
		t.Errorf("LongWindows = %d, want clamped to 10", c.LongWindows)
	}
}
