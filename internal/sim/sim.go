// Package sim provides a deterministic discrete-event simulation engine.
//
// It is the execution substrate for the packet-level network simulator in
// internal/netsim, playing the role that Netbench's event loop plays in the
// QVISOR paper's evaluation. Events are ordered by (time, sequence number),
// so two runs with identical inputs produce identical schedules.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is simulated time in nanoseconds since the start of the run.
//
// Nanosecond granularity is sufficient for the link speeds the paper uses:
// on a 1 Gbps link one bit lasts exactly 1 ns, and a 1500 B frame 12 µs.
type Time int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable simulated time.
const MaxTime = Time(math.MaxInt64)

// Duration converts a simulated time span to a wall-clock time.Duration
// (both are nanosecond counts).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now Time)

// item is a scheduled event in the priority queue.
type item struct {
	at   Time
	seq  uint64 // insertion order; breaks ties deterministically
	fn   Event
	idx  int // heap index, -1 once popped or cancelled
	dead bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Returns true if the event was pending.
func (h Handle) Cancel() bool {
	if h.it == nil || h.it.dead {
		return false
	}
	h.it.dead = true
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool { return h.it != nil && !h.it.dead }

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*h = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// all scheduling must happen from event callbacks or before Run.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	fired   uint64
	stopped bool
}

// New returns an engine with simulated time starting at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.heap) }

// ErrPastEvent is returned by At when scheduling before the current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at absolute time at. It panics if at precedes the
// current simulated time, since that would violate causality.
func (e *Engine) At(at Time, fn Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: At(%v) before now=%v: %v", at, e.now, ErrPastEvent))
	}
	it := &item{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, it)
	return Handle{it}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn Event) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%v) negative delay", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue empties, the horizon is
// passed, or Stop is called. Events scheduled exactly at the horizon run.
// It returns the simulated time of the last event executed.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		it := heap.Pop(&e.heap).(*item)
		if it.dead {
			continue
		}
		if it.at > horizon {
			// Beyond the horizon: put the event back (a later Run with a
			// larger horizon resumes it) and stop at the horizon.
			heap.Push(&e.heap, it)
			e.now = horizon
			return e.now
		}
		e.now = it.at
		it.dead = true
		e.fired++
		it.fn(e.now)
	}
	return e.now
}

// Step executes exactly one pending live event, returning false when none
// remain. Useful for tests that need fine-grained control.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		it := heap.Pop(&e.heap).(*item)
		if it.dead {
			continue
		}
		e.now = it.at
		it.dead = true
		e.fired++
		it.fn(e.now)
		return true
	}
	return false
}
