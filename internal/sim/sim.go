// Package sim provides a deterministic discrete-event simulation engine.
//
// It is the execution substrate for the packet-level network simulator in
// internal/netsim, playing the role that Netbench's event loop plays in the
// QVISOR paper's evaluation. Events are ordered by (time, sequence number),
// so two runs with identical inputs produce identical schedules.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is simulated time in nanoseconds since the start of the run.
//
// Nanosecond granularity is sufficient for the link speeds the paper uses:
// on a 1 Gbps link one bit lasts exactly 1 ns, and a 1500 B frame 12 µs.
type Time int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable simulated time.
const MaxTime = Time(math.MaxInt64)

// Duration converts a simulated time span to a wall-clock time.Duration
// (both are nanosecond counts).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now Time)

// item is a scheduled event in the priority queue. Items are recycled
// through the engine's free list: the gen counter is bumped on every
// recycle so stale Handles (held across a fire or a Reset) can never
// cancel an unrelated reincarnation of their item.
type item struct {
	at   Time
	seq  uint64 // insertion order; breaks ties deterministically
	fn   Event
	gen  uint64 // recycle generation; Handles must match to act
	dead bool
}

// Handle identifies a scheduled event so it can be cancelled. A Handle is
// pinned to one generation of its item, so holding a Handle past the
// event's firing (or past Engine.Reset) is safe: it simply goes inert.
type Handle struct {
	it  *item
	gen uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Returns true if the event was
// pending. The callback is released immediately so a cancelled event does
// not pin its captures until the queue drains past it.
func (h Handle) Cancel() bool {
	if h.it == nil || h.it.gen != h.gen || h.it.dead {
		return false
	}
	h.it.dead = true
	h.it.fn = nil
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	return h.it != nil && h.it.gen == h.gen && !h.it.dead
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq).
// container/heap is avoided deliberately: its interface indirection costs
// two dynamic calls per sift step on the hottest loop in the simulator.
type eventHeap []*item

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (h *eventHeap) push(it *item) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *item {
	old := *h
	n := len(old)
	it := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	return it
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// all scheduling must happen from event callbacks or before Run.
//
// # Same-timestamp ordering
//
// Events scheduled for the same simulated time fire in FIFO order by
// insertion: every At/After call takes the next value of a monotonic
// sequence counter, and the heap orders by (time, sequence). This is a
// contract, not an accident — the sharded coordinator's barrier merge
// relies on it to make cross-shard arrival order deterministic (arrivals
// are injected in a globally sorted order, and the engine preserves that
// order among equal timestamps). Two interactions are worth spelling out:
//
//   - Cancel does not disturb the order of the surviving events: a
//     cancelled item keeps its place in the heap until popped, is then
//     discarded, and its sequence number is never reused.
//   - Reset restarts the sequence counter at zero, so a fresh run of the
//     same schedule reproduces the same tie-break order — which is what
//     keeps engine reuse across sweep trials byte-identical.
//
// Popped and cancelled items are recycled through an internal free list,
// so a steady-state schedule/fire cycle performs no allocations; Reset
// rewinds the clock for a fresh run while keeping that free list (and the
// heap's capacity) warm, which is what lets sweep harnesses reuse one
// engine across trials instead of rebuilding it.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	fired   uint64
	stopped bool
	free    []*item
}

// New returns an engine with simulated time starting at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.heap) }

// NextAt returns the timestamp of the earliest pending live event and
// whether one exists. Cancelled events at the top of the queue are
// discarded (and recycled) on the way, so the answer is exact — this is
// what the shard coordinator uses to pick the next conservative window.
func (e *Engine) NextAt() (Time, bool) {
	for len(e.heap) > 0 {
		if !e.heap[0].dead {
			return e.heap[0].at, true
		}
		e.recycle(e.heap.pop())
	}
	return 0, false
}

// ErrPastEvent is returned by At when scheduling before the current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at absolute time at. It panics if at precedes the
// current simulated time, since that would violate causality.
func (e *Engine) At(at Time, fn Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: At(%v) before now=%v: %v", at, e.now, ErrPastEvent))
	}
	var it *item
	if n := len(e.free); n > 0 {
		it = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		it = &item{}
	}
	it.at, it.seq, it.fn, it.dead = at, e.seq, fn, false
	e.seq++
	e.heap.push(it)
	return Handle{it: it, gen: it.gen}
}

// recycle returns a popped item to the free list. Bumping the generation
// first makes every outstanding Handle to it inert; the callback is
// dropped so recycled items never pin event captures.
func (e *Engine) recycle(it *item) {
	it.gen++
	it.fn = nil
	it.dead = true
	e.free = append(e.free, it)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn Event) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%v) negative delay", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue empties, the horizon is
// passed, or Stop is called. Events scheduled exactly at the horizon run.
// It returns the simulated time of the last event executed.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		it := e.heap.pop()
		if it.dead {
			e.recycle(it)
			continue
		}
		if it.at > horizon {
			// Beyond the horizon: put the event back (a later Run with a
			// larger horizon resumes it) and stop at the horizon. The item
			// keeps its generation, so outstanding Handles stay valid.
			e.heap.push(it)
			e.now = horizon
			return e.now
		}
		e.now = it.at
		fn := it.fn
		e.recycle(it) // before fn: the callback may schedule (and reuse) freely
		e.fired++
		fn(e.now)
	}
	return e.now
}

// Step executes exactly one pending live event, returning false when none
// remain. Useful for tests that need fine-grained control.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		it := e.heap.pop()
		if it.dead {
			e.recycle(it)
			continue
		}
		e.now = it.at
		fn := it.fn
		e.recycle(it)
		e.fired++
		fn(e.now)
		return true
	}
	return false
}

// Reset rewinds the engine to its initial state — time zero, empty queue,
// zero counters — while keeping the item free list and heap capacity, so a
// harness can reuse one engine across many runs without reallocating its
// internals. Every outstanding Handle is invalidated.
func (e *Engine) Reset() {
	for _, it := range e.heap {
		e.recycle(it)
	}
	e.heap = e.heap[:0]
	e.now, e.seq, e.fired, e.stopped = 0, 0, 0, false
}
