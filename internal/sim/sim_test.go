package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1.000µs"},
		{1500 * Nanosecond, "1.500µs"},
		{Millisecond, "1.000ms"},
		{2500 * Microsecond, "2.500ms"},
		{Second, "1.000s"},
		{1500 * Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2.0", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Fatalf("Seconds() = %v, want 0.5", got)
	}
}

func TestRunInOrder(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []Time{30, 10, 20, 10, 40} {
		d := d
		e.At(d, func(now Time) { got = append(got, now) })
	}
	e.Run(MaxTime)
	want := []Time{10, 10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run(MaxTime)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at index %d: got %d", i, v)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var at Time = -1
	e.At(100, func(Time) {
		e.After(50, func(now Time) { at = now })
	})
	e.Run(MaxTime)
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestAtPastPanics(t *testing.T) {
	e := New()
	e.At(100, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func(Time) {})
	})
	e.Run(MaxTime)
}

func TestAfterNegativePanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(10, func(Time) { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending before run")
	}
	if !h.Cancel() {
		t.Fatal("first Cancel should return true")
	}
	if h.Cancel() {
		t.Fatal("second Cancel should return false")
	}
	e.Run(MaxTime)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", e.Fired())
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := New()
	h := e.At(10, func(Time) {})
	e.Run(MaxTime)
	if h.Pending() {
		t.Fatal("fired event still pending")
	}
	if h.Cancel() {
		t.Fatal("Cancel after firing should return false")
	}
}

func TestHorizonStopsRun(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	end := e.Run(25)
	if end != 25 {
		t.Fatalf("Run returned %v, want horizon 25", end)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (10 and 20)", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", e.Now())
	}
}

func TestRunResumesPastHorizon(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 30, 50} {
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.Run(20)
	if len(fired) != 1 {
		t.Fatalf("first phase fired %d, want 1", len(fired))
	}
	e.Run(MaxTime)
	if len(fired) != 3 {
		t.Fatalf("resumed run fired %d total, want 3 (event at horizon must not be lost)", len(fired))
	}
	if fired[1] != 30 || fired[2] != 50 {
		t.Fatalf("resumed order wrong: %v", fired)
	}
}

func TestEventAtHorizonRuns(t *testing.T) {
	e := New()
	ran := false
	e.At(25, func(Time) { ran = true })
	e.Run(25)
	if !ran {
		t.Fatal("event exactly at horizon should run")
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	e.At(1, func(Time) { count++; e.Stop() })
	e.At(2, func(Time) { count++ })
	e.Run(MaxTime)
	if count != 1 {
		t.Fatalf("ran %d events after Stop, want 1", count)
	}
	// Run again resumes.
	e.Run(MaxTime)
	if count != 2 {
		t.Fatalf("resumed run total = %d, want 2", count)
	}
}

func TestStep(t *testing.T) {
	e := New()
	count := 0
	e.At(5, func(Time) { count++ })
	e.At(7, func(Time) { count++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if count != 1 || e.Now() != 5 {
		t.Fatalf("after one step count=%d now=%v", count, e.Now())
	}
	if !e.Step() {
		t.Fatal("second Step returned false")
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	e := New()
	h := e.At(1, func(Time) { t.Fatal("cancelled event ran") })
	ran := false
	e.At(2, func(Time) { ran = true })
	h.Cancel()
	if !e.Step() {
		t.Fatal("Step should run the live event")
	}
	if !ran {
		t.Fatal("live event did not run")
	}
}

func TestReentrantScheduling(t *testing.T) {
	// Events scheduled from within events at the same timestamp run in
	// insertion order after currently queued same-time events.
	e := New()
	var order []string
	e.At(10, func(now Time) {
		order = append(order, "a")
		e.At(10, func(Time) { order = append(order, "c") })
	})
	e.At(10, func(Time) { order = append(order, "b") })
	e.Run(MaxTime)
	want := "abc"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestChainedEvents(t *testing.T) {
	// A self-perpetuating event chain advances time correctly.
	e := New()
	var times []Time
	var tick func(Time)
	tick = func(now Time) {
		times = append(times, now)
		if len(times) < 5 {
			e.After(3, tick)
		}
	}
	e.At(0, tick)
	e.Run(MaxTime)
	for i, at := range times {
		if at != Time(3*i) {
			t.Fatalf("tick %d at %v, want %d", i, at, 3*i)
		}
	}
}

// TestPropertyOrdering checks via quick that any batch of events fires in
// nondecreasing time order regardless of insertion order.
func TestPropertyOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var fired []Time
		for _, d := range delays {
			e.At(Time(d), func(now Time) { fired = append(fired, now) })
		}
		e.Run(MaxTime)
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCancelSubset checks that cancelling an arbitrary subset fires
// exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		handles := make([]Handle, n)
		fired := make([]bool, n)
		for i := 0; i < int(n); i++ {
			i := i
			handles[i] = e.At(Time(rng.Intn(50)), func(Time) { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := range handles {
			if rng.Intn(2) == 0 {
				handles[i].Cancel()
				cancelled[i] = true
			}
		}
		e.Run(MaxTime)
		for i := range fired {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := New()
		rng := rand.New(rand.NewSource(42))
		var fired []Time
		for i := 0; i < 500; i++ {
			e.At(Time(rng.Intn(1000)), func(now Time) { fired = append(fired, now) })
		}
		e.Run(MaxTime)
		return fired
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkEngine(b *testing.B) {
	e := New()
	var tick func(Time)
	n := 0
	tick = func(Time) {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.At(0, tick)
	e.Run(MaxTime)
}

// --- free-list / Reset / handle-generation tests (zero-alloc engine) ---

func TestResetRewindsEngine(t *testing.T) {
	e := New()
	var fired int
	e.At(10, func(Time) { fired++ })
	e.At(20, func(Time) { fired++ })
	e.Run(MaxTime)
	e.At(99, func(Time) { fired++ }) // left pending across Reset
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d fired=%d, want zeros", e.Now(), e.Pending(), e.Fired())
	}
	// The engine must behave exactly like a fresh one, including seq-based
	// tie-breaking.
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run(MaxTime)
	if fired != 2 {
		t.Fatalf("pending event from before Reset fired (fired=%d)", fired)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break after Reset violated at %d: got %d", i, v)
		}
	}
}

func TestStaleHandleCannotCancelRecycledItem(t *testing.T) {
	e := New()
	h1 := e.At(1, func(Time) {})
	e.Run(MaxTime) // fires h1; its item goes to the free list
	var fired bool
	h2 := e.At(2, func(Time) { fired = true }) // reuses the recycled item
	if h1.it != h2.it {
		t.Skip("free list did not reuse the item; generation guard untestable here")
	}
	if h1.Cancel() {
		t.Fatal("stale handle claimed to cancel a recycled item")
	}
	if h1.Pending() {
		t.Fatal("stale handle claims pending")
	}
	e.Run(MaxTime)
	if !fired {
		t.Fatal("stale handle cancelled an unrelated event")
	}
}

func TestResetInvalidatesHandles(t *testing.T) {
	e := New()
	h := e.At(5, func(Time) { t.Fatal("event fired across Reset") })
	e.Reset()
	if h.Pending() {
		t.Fatal("handle pending after Reset")
	}
	if h.Cancel() {
		t.Fatal("handle cancellable after Reset")
	}
	e.Run(MaxTime)
}

// TestCancelReleasesCallback: cancelling must nil the callback immediately
// so pooled payloads aren't pinned until the queue drains past the dead
// item (the cancelled-event memory-leak fix).
func TestCancelReleasesCallback(t *testing.T) {
	e := New()
	h := e.At(1000, func(Time) {})
	if !h.Cancel() {
		t.Fatal("Cancel returned false for a pending event")
	}
	if h.it.fn != nil {
		t.Fatal("cancelled event still references its callback")
	}
	e.Run(MaxTime)
	if e.Fired() != 0 {
		t.Fatal("cancelled event fired")
	}
}

func TestRecycleAcrossHorizonPushback(t *testing.T) {
	// An event beyond the horizon is pushed back un-recycled; its handle
	// must stay valid and cancellable.
	e := New()
	var fired bool
	h := e.At(100, func(Time) { fired = true })
	e.Run(50)
	if !h.Pending() {
		t.Fatal("pushed-back event lost its handle")
	}
	if !h.Cancel() {
		t.Fatal("could not cancel pushed-back event")
	}
	e.Run(MaxTime)
	if fired {
		t.Fatal("cancelled pushed-back event fired")
	}
}

// TestAllocBudgetEngine: a warmed schedule→fire cycle must not allocate.
func TestAllocBudgetEngine(t *testing.T) {
	e := New()
	fn := func(Time) {}
	for i := 0; i < 64; i++ { // warm the free list and heap capacity
		e.After(Time(i), fn)
	}
	e.Run(MaxTime)
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(10, fn)
		e.After(5, fn)
		e.Run(MaxTime)
	})
	if allocs != 0 {
		t.Fatalf("schedule/fire cycle allocates %.1f objects/op, budget is 0", allocs)
	}
}

// TestAllocBudgetCancel: cancel must be allocation-free too.
func TestAllocBudgetCancel(t *testing.T) {
	e := New()
	fn := func(Time) {}
	e.After(1, fn)
	e.Run(MaxTime)
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.After(10, fn)
		h.Cancel()
		e.Run(MaxTime)
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel cycle allocates %.1f objects/op, budget is 0", allocs)
	}
}

func TestResetDeterminism(t *testing.T) {
	// A reused engine must replay a randomized schedule identically to a
	// fresh engine.
	run := func(e *Engine, seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		var got []Time
		for i := 0; i < 200; i++ {
			e.At(Time(rng.Intn(50)), func(now Time) { got = append(got, now) })
		}
		e.Run(MaxTime)
		return got
	}
	reused := New()
	run(reused, 1) // dirty it
	reused.Reset()
	a := run(reused, 7)
	b := run(New(), 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// The three tests below pin the same-timestamp FIFO contract the sharded
// barrier merge relies on (see the Engine doc, "Same-timestamp
// ordering"): insertion order among equal timestamps survives Cancel,
// interleaves correctly with re-scheduling, and restarts cleanly on
// Reset.

func TestTieBreakSurvivesCancel(t *testing.T) {
	e := New()
	var order []int
	var handles []Handle
	for i := 0; i < 20; i++ {
		i := i
		handles = append(handles, e.At(5, func(Time) { order = append(order, i) }))
	}
	// Cancel every third event; the survivors must keep their relative
	// insertion order — a cancelled item's heap slot must not let a later
	// insertion jump the queue.
	var want []int
	for i, h := range handles {
		if i%3 == 0 {
			h.Cancel()
		} else {
			want = append(want, i)
		}
	}
	// Events scheduled after the cancellations, at the same timestamp,
	// must fire after all survivors.
	for i := 20; i < 25; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
		want = append(want, i)
	}
	e.Run(MaxTime)
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order after cancels = %v, want %v", order, want)
	}
}

func TestTieBreakCancelThenRescheduleSameTime(t *testing.T) {
	// Cancelling and re-scheduling "the same" logical event moves it to
	// the back of its timestamp's FIFO — the re-schedule takes a fresh
	// sequence number; the old one is burned, never reused.
	e := New()
	var order []string
	a := e.At(7, func(Time) { order = append(order, "a") })
	e.At(7, func(Time) { order = append(order, "b") })
	a.Cancel()
	e.At(7, func(Time) { order = append(order, "a2") })
	e.Run(MaxTime)
	want := []string{"b", "a2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTieBreakResetRestartsSequence(t *testing.T) {
	// After Reset the sequence counter restarts at zero, so replaying the
	// same schedule — including a cancellation — reproduces the same
	// tie-break order. The sharded determinism regression depends on
	// this when engines are reused across runs.
	run := func(e *Engine) []int {
		var order []int
		var hs []Handle
		for i := 0; i < 10; i++ {
			i := i
			hs = append(hs, e.At(3, func(Time) { order = append(order, i) }))
		}
		hs[4].Cancel()
		e.Run(MaxTime)
		return order
	}
	e := New()
	first := run(e)
	e.Reset()
	second := run(e)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("tie-break order changed across Reset: %v vs %v", first, second)
	}
	if e.seq != 10 {
		t.Fatalf("sequence after reset run = %d, want 10 (restarted at zero)", e.seq)
	}
}
