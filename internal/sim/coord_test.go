package sim

import (
	"fmt"
	"reflect"
	"testing"

	"qvisor/internal/leaktest"
)

// tokenShard is a minimal shard for coordinator tests: every injected
// message fires an event at its timestamp that logs (time, payload) and,
// while hops remain, forwards a message to the next shard after exactly
// the lookahead.
type tokenShard struct {
	id    int
	eng   *Engine
	coord *Coordinator
	L     Time
	log   []string
	seq   uint64
}

func (s *tokenShard) inject(m Message) {
	hops := m.Data.(int)
	s.eng.At(m.At, func(now Time) { s.bounce(now, hops) })
}

func (s *tokenShard) bounce(now Time, hops int) {
	s.log = append(s.log, fmt.Sprintf("s%d@%d hops=%d", s.id, now, hops))
	if hops <= 0 {
		return
	}
	dst := 1 - s.id
	s.seq++
	s.coord.Send(Message{
		At:   now + s.L,
		Dst:  dst,
		Link: uint64(s.id),
		Seq:  s.seq,
		Data: hops - 1,
	})
}

func newTokenPair(t *testing.T, L Time) (*Coordinator, []*tokenShard) {
	t.Helper()
	shards := []*tokenShard{
		{id: 0, eng: New(), L: L},
		{id: 1, eng: New(), L: L},
	}
	cfgs := make([]ShardConfig, len(shards))
	for i, s := range shards {
		cfgs[i] = ShardConfig{Engine: s.eng, Inject: s.inject}
	}
	c, err := NewCoordinator(CoordConfig{Shards: cfgs, Lookahead: L})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shards {
		s.coord = c
	}
	return c, shards
}

func TestCoordinatorTokenPassing(t *testing.T) {
	defer leaktest.Check(t)()
	const L = 10
	c, shards := newTokenPair(t, L)
	defer c.Close()
	// Seed: shard 0 bounces a 6-hop token starting at t=5.
	shards[0].eng.At(5, func(now Time) { shards[0].bounce(now, 6) })
	c.Run(MaxTime - L) // run to quiescence

	want0 := []string{"s0@5 hops=6", "s0@25 hops=4", "s0@45 hops=2", "s0@65 hops=0"}
	want1 := []string{"s1@15 hops=5", "s1@35 hops=3", "s1@55 hops=1"}
	if !reflect.DeepEqual(shards[0].log, want0) {
		t.Fatalf("shard 0 log = %v, want %v", shards[0].log, want0)
	}
	if !reflect.DeepEqual(shards[1].log, want1) {
		t.Fatalf("shard 1 log = %v, want %v", shards[1].log, want1)
	}
	st := c.Stats()
	if st.Messages != 6 {
		t.Fatalf("messages = %d, want 6", st.Messages)
	}
	if st.Windows == 0 {
		t.Fatal("no windows recorded")
	}
}

func TestCoordinatorHorizonAndResume(t *testing.T) {
	defer leaktest.Check(t)()
	const L = 10
	c, shards := newTokenPair(t, L)
	defer c.Close()
	shards[0].eng.At(0, func(now Time) { shards[0].bounce(now, 3) })
	// Stop mid-flight: hop at t=20 lies beyond horizon 15.
	c.Run(15)
	if got := len(shards[0].log) + len(shards[1].log); got != 2 {
		t.Fatalf("events before horizon = %d, want 2", got)
	}
	// Resume: the remaining hops run, including events exactly at the
	// horizon (Engine.Run semantics).
	c.Run(30)
	if got := len(shards[0].log) + len(shards[1].log); got != 4 {
		t.Fatalf("events after resume = %d, want 4", got)
	}
}

func TestCoordinatorDeterministicMergeOrder(t *testing.T) {
	defer leaktest.Check(t)()
	// Many same-timestamp messages from both shards to shard 0: the
	// injection order must be (At, Link, Seq) regardless of scheduling.
	const L = 5
	run := func() []string {
		var order []string
		recv := &struct {
			eng *Engine
		}{New()}
		senderA, senderB := New(), New()
		cfgs := []ShardConfig{
			{Engine: recv.eng, Inject: func(m Message) {
				order = append(order, fmt.Sprintf("at=%d link=%d seq=%d", m.At, m.Link, m.Seq))
				recv.eng.At(m.At, func(Time) {})
			}},
			{Engine: senderA, Inject: func(Message) {}},
			{Engine: senderB, Inject: func(Message) {}},
		}
		c, err := NewCoordinator(CoordConfig{Shards: cfgs, Lookahead: L, ChanCap: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		emit := func(eng *Engine, link uint64) {
			seq := uint64(0)
			eng.At(1, func(now Time) {
				for k := 0; k < 8; k++ {
					seq++
					c.Send(Message{At: now + L, Dst: 0, Link: link, Seq: seq, Data: 0})
				}
			})
		}
		emit(senderB, 7) // deliberately emit the higher link id first
		emit(senderA, 3)
		c.Run(100)
		return order
	}
	first := run()
	if len(first) != 16 {
		t.Fatalf("got %d injections, want 16", len(first))
	}
	// Sorted: link 3 seq 1..8, then link 7 seq 1..8.
	for i, want := range []string{"at=6 link=3 seq=1", "at=6 link=3 seq=2"} {
		if first[i] != want {
			t.Fatalf("order[%d] = %q, want %q", i, first[i], want)
		}
	}
	if first[8] != "at=6 link=7 seq=1" {
		t.Fatalf("order[8] = %q, want link 7 to start at index 8", first[8])
	}
	for i := 0; i < 20; i++ {
		if again := run(); !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d produced different order:\n%v\nvs\n%v", i, again, first)
		}
	}
}

func TestCoordinatorLookaheadViolationPanics(t *testing.T) {
	defer leaktest.Check(t)()
	const L = 10
	c, shards := newTokenPair(t, L)
	defer c.Close()
	panicked := make(chan any, 1)
	shards[0].eng.At(5, func(now Time) {
		defer func() { panicked <- recover() }()
		// Arrives inside the very window that generates it: must panic.
		c.Send(Message{At: now + 1, Dst: 1, Link: 0, Seq: 1, Data: 0})
	})
	c.Run(100)
	select {
	case p := <-panicked:
		if p == nil {
			t.Fatal("lookahead violation did not panic")
		}
	default:
		t.Fatal("event did not run")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordConfig{Lookahead: 1}); err == nil {
		t.Fatal("expected error for zero shards")
	}
	if _, err := NewCoordinator(CoordConfig{
		Shards:    []ShardConfig{{Engine: New(), Inject: func(Message) {}}},
		Lookahead: 0,
	}); err == nil {
		t.Fatal("expected error for zero lookahead")
	}
	if _, err := NewCoordinator(CoordConfig{
		Shards:    []ShardConfig{{Engine: nil, Inject: func(Message) {}}},
		Lookahead: 1,
	}); err == nil {
		t.Fatal("expected error for missing engine")
	}
}

func TestCoordinatorCloseIsIdempotentAndLeakFree(t *testing.T) {
	check := leaktest.Check(t)
	c, shards := newTokenPair(t, 10)
	shards[0].eng.At(0, func(now Time) { shards[0].bounce(now, 2) })
	c.Run(100)
	c.Close()
	c.Close() // second Close is a no-op
	check()
}

func TestEngineNextAt(t *testing.T) {
	e := New()
	if _, ok := e.NextAt(); ok {
		t.Fatal("empty engine reported a pending event")
	}
	h := e.At(30, func(Time) {})
	e.At(50, func(Time) {})
	if at, ok := e.NextAt(); !ok || at != 30 {
		t.Fatalf("NextAt = %v,%v want 30,true", at, ok)
	}
	// Cancelling the earliest event must make NextAt skip (and discard) it.
	h.Cancel()
	if at, ok := e.NextAt(); !ok || at != 50 {
		t.Fatalf("NextAt after cancel = %v,%v want 50,true", at, ok)
	}
	e.Run(100)
	if _, ok := e.NextAt(); ok {
		t.Fatal("drained engine reported a pending event")
	}
}

// TestCoordinatorAccessors: the shard count and lookahead round-trip.
func TestCoordinatorAccessors(t *testing.T) {
	cfgs := make([]ShardConfig, 3)
	for i := range cfgs {
		cfgs[i] = ShardConfig{Engine: New(), Inject: func(Message) {}}
	}
	c, err := NewCoordinator(CoordConfig{Shards: cfgs, Lookahead: 5 * Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 3 {
		t.Fatalf("Shards = %d, want 3", c.Shards())
	}
	if c.Lookahead() != 5*Microsecond {
		t.Fatalf("Lookahead = %v, want 5us", c.Lookahead())
	}
}
