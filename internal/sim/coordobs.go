package sim

import (
	"strconv"

	"qvisor/internal/obs"
)

// Metric families for coordinator telemetry. Until these existed the
// coordinator's counters were computed but unreachable from the metrics
// endpoint; netsim.Cluster.FlushMetrics publishes them alongside its
// shard gauges so -metrics snapshots and /v1/metrics carry them.
const (
	// MetricSimWindows counts parallel windows executed.
	MetricSimWindows = "qvisor_sim_windows_total"
	// MetricSimMessages counts cross-shard handoff messages.
	MetricSimMessages = "qvisor_sim_messages_total"
	// MetricSimBarrierWait is cumulative wall-clock barrier wait, in
	// nanoseconds, labeled by shard.
	MetricSimBarrierWait = "qvisor_sim_barrier_wait_ns_total"
	// MetricSimChanHighwater is the handoff-channel high-water mark.
	MetricSimChanHighwater = "qvisor_sim_chan_highwater"
)

// Export publishes the coordinator counters into reg as deltas against
// prev — pass the previously exported stats (the zero value on first
// call) so counters stay monotonic across repeated flushes. A nil
// registry is a no-op.
func (s CoordStats) Export(reg *obs.Registry, prev CoordStats) {
	if reg == nil {
		return
	}
	reg.Counter(MetricSimWindows,
		"Parallel simulation windows executed by the shard coordinator.").
		Add(s.Windows - prev.Windows)
	reg.Counter(MetricSimMessages,
		"Cross-shard handoff messages exchanged.").
		Add(s.Messages - prev.Messages)
	reg.Gauge(MetricSimChanHighwater,
		"High-water mark of the cross-shard handoff channel.").
		Set(float64(s.MaxChanLen))
	for i, bw := range s.BarrierWait {
		var p int64
		if i < len(prev.BarrierWait) {
			p = prev.BarrierWait[i].Nanoseconds()
		}
		reg.Counter(MetricSimBarrierWait,
			"Cumulative wall-clock time shards spent waiting at window barriers, by shard.",
			obs.L("shard", strconv.Itoa(i))).
			Add(uint64(bw.Nanoseconds() - p))
	}
}
