package api

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"

	"qvisor/internal/core"
	"qvisor/internal/policy"
)

// Handlers for the bulk-capable /v1 surface: tenants:batch, PATCH
// /v1/spec, per-tenant GET/PUT with content ETags, and the epoch view.

// tenantETag computes a tenant's content ETag: an FNV-1a hash over every
// field a registration carries (name, id, algorithm, bounds, levels),
// rendered "t-<hex>" so it can never collide with the numeric spec
// version ETags used elsewhere.
func tenantETag(t *core.Tenant) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d\x00", t.Name, t.ID)
	if t.Algorithm != nil {
		fmt.Fprintf(h, "%s", t.Algorithm.Name())
	}
	fmt.Fprintf(h, "\x00%d\x00%d\x00%d", t.Bounds.Lo, t.Bounds.Hi, t.Levels)
	return fmt.Sprintf("t-%016x", h.Sum64())
}

// errorBodyFor classifies a controller error into an envelope body.
func errorBodyFor(err error) *ErrorBody {
	code := CodeBadRequest
	switch {
	case errors.Is(err, core.ErrTenantExists):
		code = CodeTenantExists
	case errors.Is(err, core.ErrTenantNotFound):
		code = CodeUnknownTenant
	}
	return &ErrorBody{Code: code, Message: err.Error()}
}

// handleBatch applies a bulk tenant mutation as one transaction: every
// op validates and the batch compiles into a single new policy epoch, or
// nothing changes and the 409 envelope reports each op's outcome.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			errors.New("api: batch has no ops"))
		return
	}
	var spec *policy.Spec
	if req.Spec != "" {
		var err error
		if spec, err = policy.Parse(req.Spec); err != nil {
			writeError(w, http.StatusBadRequest, CodeParseError, err)
			return
		}
	}
	// Convert the wire ops, collecting conversion failures per item so
	// one bad op reports alongside — not instead of — the others.
	ops := make([]core.TenantOp, len(req.Ops))
	results := make([]BatchItemResult, len(req.Ops))
	failed := false
	for i, op := range req.Ops {
		results[i] = BatchItemResult{Op: op.Op, Name: op.Name}
		switch op.Op {
		case "join", "update":
			if op.Tenant == nil {
				results[i].Error = &ErrorBody{Code: CodeBadRequest,
					Message: fmt.Sprintf("api: %s op without tenant", op.Op)}
				failed = true
				continue
			}
			results[i].Name = op.Tenant.Name
			t, err := op.Tenant.toTenant()
			if err != nil {
				results[i].Error = &ErrorBody{Code: CodeBadRequest, Message: err.Error()}
				failed = true
				continue
			}
			kind := core.OpJoin
			if op.Op == "update" {
				kind = core.OpUpdate
			}
			ops[i] = core.TenantOp{Kind: kind, Tenant: t}
		case "leave":
			if op.Name == "" {
				results[i].Error = &ErrorBody{Code: CodeBadRequest,
					Message: "api: leave op without name"}
				failed = true
				continue
			}
			ops[i] = core.TenantOp{Kind: core.OpLeave, Name: op.Name}
		default:
			results[i].Error = &ErrorBody{Code: CodeBadRequest,
				Message: fmt.Sprintf("api: unknown batch op %q", op.Op)}
			failed = true
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.checkIfMatch(w, r) {
		return
	}
	if !failed {
		itemErrs, err := s.ctl.ApplyBatch(s.clock(), ops, spec)
		switch {
		case err == nil:
			// Applied: one new epoch covers the whole batch.
		case errors.Is(err, core.ErrBatchFailed):
			for i, ie := range itemErrs {
				if ie != nil {
					results[i].Error = errorBodyFor(ie)
				}
			}
			failed = true
		default:
			// The batch staged fine but the joint compile rejected it
			// (e.g. the new spec doesn't cover the new tenant set).
			writeError(w, http.StatusConflict, CodeSynthFailed, err)
			return
		}
	}
	if failed {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: ErrorBody{
			Code:    CodeBatchFailed,
			Message: "api: batch not applied; see items",
			Items:   results,
		}})
		return
	}
	gen := uint64(0)
	if e := s.ctl.Epochs().Current(); e != nil {
		gen = e.Gen
	}
	v := s.ctl.Version()
	w.Header().Set("ETag", `"`+strconv.FormatUint(v, 10)+`"`)
	writeJSON(w, http.StatusOK, BatchResponse{
		Results: results,
		Spec:    s.ctl.Spec().String(),
		Version: v,
		Epoch:   gen,
	})
}

// handlePatchSpec applies targeted ops to the current specification —
// the read-modify-write PUT without resending (or clobbering) the whole
// document.
func (s *Server) handlePatchSpec(w http.ResponseWriter, r *http.Request) {
	var req PatchSpecRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			errors.New("api: patch has no ops"))
		return
	}
	ops := make([]policy.Op, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = policy.Op{Kind: op.Op, Tenant: op.Tenant,
			Tier: op.Tier, Level: op.Level, Weight: op.Weight}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.checkIfMatch(w, r) {
		return
	}
	spec, err := s.ctl.Spec().Apply(ops)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if err := s.ctl.UpdateSpec(s.clock(), spec); err != nil {
		writeError(w, http.StatusConflict, CodeSynthFailed, err)
		return
	}
	s.specResponse(w, http.StatusOK)
}

// handleGetTenant serves one registration with its content ETag.
func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.ctl.Tenant(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownTenant,
			fmt.Errorf("api: tenant %q: %w", name, core.ErrTenantNotFound))
		return
	}
	etag := tenantETag(t)
	w.Header().Set("ETag", `"`+etag+`"`)
	if inm := trimETag(r.Header.Get("If-None-Match")); inm == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, tenantInfo(t, s.ctl.Flagged(name), s.ctl.Quarantined(name)))
}

// handlePutTenant replaces one tenant's definition. If-Match, when
// present, must name the tenant's current content ETag (from GET); "*"
// matches any. The spec is untouched — membership changes go through
// tenants:batch.
func (s *Server) handlePutTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var ti TenantInfo
	if err := readJSON(r, &ti); err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	if ti.Name == "" {
		ti.Name = name
	}
	if ti.Name != name {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("api: body names tenant %q, path names %q", ti.Name, name))
		return
	}
	t, err := ti.toTenant()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.ctl.Tenant(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownTenant,
			fmt.Errorf("api: tenant %q: %w", name, core.ErrTenantNotFound))
		return
	}
	if raw := trimETag(r.Header.Get("If-Match")); raw != "" && raw != "*" {
		if cur := tenantETag(old); raw != cur {
			w.Header().Set("ETag", `"`+cur+`"`)
			writeJSON(w, http.StatusConflict, ErrorResponse{Error: ErrorBody{
				Code:    CodeVersionConflict,
				Message: fmt.Sprintf("api: tenant %q is at %s, If-Match named %s", name, cur, raw),
			}})
			return
		}
	}
	if t.ID == 0 {
		// The label is part of the identity; an omitted id keeps the
		// registered one rather than silently re-labeling the tenant.
		t.ID = old.ID
	}
	if err := s.ctl.UpdateTenant(s.clock(), t); err != nil {
		writeError(w, http.StatusConflict, CodeSynthFailed, err)
		return
	}
	w.Header().Set("ETag", `"`+tenantETag(t)+`"`)
	writeJSON(w, http.StatusOK, tenantInfo(t, s.ctl.Flagged(name), s.ctl.Quarantined(name)))
}

// handleEpochs exposes the policy-generation store: the live epoch, the
// superseded epochs still draining in-flight packets, and the lifetime
// publish count.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	es := s.ctl.Epochs()
	s.mu.Unlock()
	// Generations() locks the store itself; the packet counts are
	// inherently a racy snapshot against a live data plane, like any
	// metrics scrape.
	writeJSON(w, http.StatusOK, es.Generations())
}

// trimETag strips optional surrounding quotes from an ETag header value.
func trimETag(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}
