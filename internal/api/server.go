package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"qvisor/internal/core"
	"qvisor/internal/obs"
	"qvisor/internal/orchestrator"
	"qvisor/internal/policy"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/trace"
)

// Server exposes a core.Controller over HTTP. The controller is not safe
// for concurrent use, so the server serializes all access behind a mutex —
// configuration operations are control-plane rate, not data-plane rate.
type Server struct {
	mu     sync.Mutex
	ctl    *core.Controller
	start  time.Time
	clock  func() sim.Time
	mux    *http.ServeMux
	tracer *trace.Recorder
	watch  *slo.Watchdog
}

// NewServer wraps a controller. The controller's simulated-time arguments
// are driven by wall-clock time since server start; pass clock to override
// (tests).
func NewServer(ctl *core.Controller, clock func() sim.Time) *Server {
	s := &Server{ctl: ctl, start: time.Now(), clock: clock}
	if s.clock == nil {
		s.clock = func() sim.Time { return sim.Time(time.Since(s.start)) }
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/policy", s.handlePolicy)
	mux.HandleFunc("GET /v1/spec", s.handleGetSpec)
	mux.HandleFunc("PUT /v1/spec", s.handlePutSpec)
	mux.HandleFunc("PATCH /v1/spec", s.handlePatchSpec)
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("POST /v1/tenants", deprecated("/v1/tenants:batch", s.handleJoin))
	mux.HandleFunc("POST /v1/tenants:batch", s.handleBatch)
	mux.HandleFunc("GET /v1/tenants/{name}", s.handleGetTenant)
	mux.HandleFunc("PUT /v1/tenants/{name}", s.handlePutTenant)
	mux.HandleFunc("DELETE /v1/tenants/{name}", deprecated("/v1/tenants:batch", s.handleLeave))
	mux.HandleFunc("GET /v1/tenants/{name}/monitor", s.handleMonitor)
	mux.HandleFunc("GET /v1/epochs", s.handleEpochs)
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/fabric", s.handleFabric)
	mux.HandleFunc("GET /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	s.mux = mux
	return s
}

// AttachTrace exposes rec's event ring via GET /v1/trace. Call before
// serving; without a recorder the endpoint answers 404. The recorder's
// own lock makes snapshots safe against a concurrently running data
// plane.
func (s *Server) AttachTrace(rec *trace.Recorder) { s.tracer = rec }

// ServeHTTP implements http.Handler. The mux's built-in 404/405 fallbacks
// write plain text; envelopeWriter rewrites them into the JSON error
// envelope so every non-2xx response has the same shape.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
}

// envelopeWriter intercepts 404/405 status writes that are not already
// JSON (i.e. the mux's plain-text fallbacks, never our own enveloped
// replies) and substitutes the error envelope.
type envelopeWriter struct {
	http.ResponseWriter
	intercepted bool
}

func (w *envelopeWriter) WriteHeader(status int) {
	ct := w.Header().Get("Content-Type")
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(ct, "application/json") {
		w.intercepted = true
		code := CodeNotFound
		msg := "api: no route matched the request path"
		if status == http.StatusMethodNotAllowed {
			code = CodeMethodNotAllowed
			msg = "api: method not allowed for this route"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options") // set by http.Error
		w.ResponseWriter.WriteHeader(status)
		_ = json.NewEncoder(w.ResponseWriter).Encode(ErrorResponse{
			Error: ErrorBody{Code: code, Message: msg},
		})
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

// Write drops the plain-text body of an intercepted fallback response.
func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.intercepted {
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError sends the uniform error envelope: a machine-readable code (one
// of the Code* constants) plus err's message.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: err.Error()}})
}

// deprecated marks a legacy route: the handler still works, but every
// response carries the standard deprecation headers pointing clients at
// the successor route.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jp := s.ctl.Policy()
	resp := PolicyResponse{
		Spec:     jp.Spec.String(),
		Version:  jp.Version,
		OutputLo: jp.Output.Lo,
		OutputHi: jp.Output.Hi,
	}
	for _, name := range jp.Spec.Tenants() {
		tr, ok := jp.TransformOf(name)
		if !ok {
			continue
		}
		resp.Transforms = append(resp.Transforms, TransformInfo{
			Tenant: name, Lo: tr.Lo, Hi: tr.Hi, Levels: tr.Levels,
			Stride: tr.Stride, Phase: tr.Phase, Offset: tr.Offset,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkIfMatch enforces optimistic concurrency: when the request carries
// an If-Match header, the mutation proceeds only if it names the current
// spec version (as returned by GET /v1/spec; bare or ETag-quoted, "*"
// matches anything). It writes the error response and returns false on
// mismatch. The caller must hold s.mu.
func (s *Server) checkIfMatch(w http.ResponseWriter, r *http.Request) bool {
	raw := r.Header.Get("If-Match")
	if raw == "" || raw == "*" {
		return true
	}
	v, err := strconv.ParseUint(strings.Trim(raw, `"`), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("api: malformed If-Match %q: want a spec version", raw))
		return false
	}
	if cur := s.ctl.Version(); v != cur {
		// The conflict reply hands back everything a retry needs: the
		// live version as both the envelope's current_version and the
		// response ETag.
		w.Header().Set("ETag", `"`+strconv.FormatUint(cur, 10)+`"`)
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: ErrorBody{
			Code:           CodeVersionConflict,
			Message:        fmt.Sprintf("api: spec version is %d, If-Match named %d", cur, v),
			CurrentVersion: cur,
		}})
		return false
	}
	return true
}

func (s *Server) specResponse(w http.ResponseWriter, status int) {
	v := s.ctl.Version()
	gen := uint64(0)
	if e := s.ctl.Epochs().Current(); e != nil {
		gen = e.Gen
	}
	w.Header().Set("ETag", `"`+strconv.FormatUint(v, 10)+`"`)
	writeJSON(w, status, SpecResponse{Spec: s.ctl.Spec().String(), Version: v, Epoch: gen})
}

func (s *Server) handleGetSpec(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specResponse(w, http.StatusOK)
}

func (s *Server) handlePutSpec(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	spec, err := policy.Parse(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.checkIfMatch(w, r) {
		return
	}
	if err := s.ctl.UpdateSpec(s.clock(), spec); err != nil {
		writeError(w, http.StatusConflict, CodeSynthFailed, err)
		return
	}
	s.specResponse(w, http.StatusOK)
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TenantInfo
	for _, t := range s.ctl.Tenants() {
		out = append(out, tenantInfo(t, s.ctl.Flagged(t.Name), s.ctl.Quarantined(t.Name)))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	t, err := req.Tenant.toTenant()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	spec, err := policy.Parse(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.checkIfMatch(w, r) {
		return
	}
	if err := s.ctl.Join(s.clock(), t, spec); err != nil {
		code := CodeSynthFailed
		if errors.Is(err, core.ErrTenantExists) {
			code = CodeTenantExists
		}
		writeError(w, http.StatusConflict, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, tenantInfo(t, false, false))
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	specText := r.URL.Query().Get("spec")
	if specText == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			errors.New("api: missing spec query parameter"))
		return
	}
	spec, err := policy.Parse(specText)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.checkIfMatch(w, r) {
		return
	}
	if err := s.ctl.Leave(s.clock(), name, spec); err != nil {
		if errors.Is(err, core.ErrTenantNotFound) {
			writeError(w, http.StatusNotFound, CodeUnknownTenant, err)
			return
		}
		writeError(w, http.StatusConflict, CodeSynthFailed, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.ctl.Monitor(name)
	if m == nil {
		writeError(w, http.StatusNotFound, CodeUnknownTenant,
			fmt.Errorf("api: no monitor for tenant %q", name))
		return
	}
	resp := MonitorResponse{
		Tenant:          name,
		Count:           m.Count(),
		OutsideFraction: m.OutsideFraction(),
		Drift:           m.Drift(),
	}
	if snap, ok := m.Snapshot(); ok {
		resp.WindowCount = snap.Count
		resp.ObservedLo = snap.Observed.Lo
		resp.ObservedHi = snap.Observed.Hi
		resp.P50 = snap.P50
		resp.P95 = snap.P95
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed, err := s.ctl.Check(s.clock())
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, CheckResponse{Redeployed: changed, Version: s.ctl.Version()})
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	plan, err := s.ctl.Policy().CompileTo(core.Target{
		Name:        req.Name,
		Sorted:      req.Sorted,
		Queues:      req.Queues,
		RankRewrite: req.RankRewrite,
		Admission:   req.Admission,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidTarget, err)
		return
	}
	resp := CompileResponse{Feasible: plan.Feasible, Downgrades: plan.Downgrades}
	for _, rq := range plan.Requirements {
		resp.Requirements = append(resp.Requirements, RequirementInfo{
			Kind:    rq.Kind.String(),
			Tenants: rq.Tenants,
			Level:   rq.Level.String(),
			Note:    rq.Note,
		})
	}
	if plan.Partial != nil {
		resp.PartialSpec = plan.Partial.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	report := s.ctl.Policy().Analyze()
	resp := AnalyzeResponse{Isolated: report.Isolated}
	for _, p := range report.Pairs {
		resp.Pairs = append(resp.Pairs, InterferenceInfo{
			From: p.From, To: p.To, Fraction: p.Fraction, Relation: p.Relation,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFabric(w http.ResponseWriter, r *http.Request) {
	var req FabricRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeParseError, err)
		return
	}
	devices := make([]orchestrator.Device, len(req.Devices))
	for i, d := range req.Devices {
		devices[i] = orchestrator.Device{
			Name: d.Name,
			Role: d.Role,
			Target: core.Target{
				Name:        d.Target.Name,
				Sorted:      d.Target.Sorted,
				Queues:      d.Target.Queues,
				RankRewrite: d.Target.RankRewrite,
				Admission:   d.Target.Admission,
			},
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fp, err := orchestrator.Plan(s.ctl.Policy(), devices)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidTarget, err)
		return
	}
	resp := FabricResponse{
		Feasible:   fp.Feasible,
		Guarantees: make(map[string]string, len(fp.Guarantees)),
		Bottleneck: make(map[string]string, len(fp.Bottleneck)),
	}
	for kind, lvl := range fp.Guarantees {
		resp.Guarantees[kind.String()] = lvl.String()
	}
	for kind, dev := range fp.Bottleneck {
		resp.Bottleneck[kind.String()] = dev
	}
	for _, dp := range fp.Devices {
		resp.Devices = append(resp.Devices, FabricDevicePlan{
			Name:     dp.Device.Name,
			Role:     dp.Device.Role,
			Backend:  dp.Backend.String(),
			Feasible: dp.Plan.Feasible,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves a filtered snapshot of the flight recorder's ring.
// The ETag is the recorder's sequence number: it advances with every
// recorded event, so a matching If-None-Match proves the ring (and hence
// any filtered view of it) is unchanged and the reply collapses to 304.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			errors.New("api: tracing not enabled (server has no flight recorder)"))
		return
	}
	f := trace.AllEvents
	q := r.URL.Query()
	if t := q.Get("tenant"); t != "" {
		v, err := strconv.Atoi(t)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("api: bad tenant %q: want a non-negative id", t))
			return
		}
		f.Tenant = v
	}
	if kinds, ok := q["kind"]; ok {
		f.Kinds = kinds
	}
	if l := q.Get("limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("api: bad limit %q: want a non-negative count", l))
			return
		}
		f.Limit = v
	}
	// No s.mu: the recorder serializes internally, and the seq/events pair
	// is taken atomically under its lock.
	events, seq := s.tracer.Snapshot(f)
	etag := `"` + strconv.FormatUint(seq, 10) + `"`
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && strings.Trim(inm, `"`) == strconv.FormatUint(seq, 10) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{Seq: seq, Events: events})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.ctl.Registry()
	if reg == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			errors.New("api: metrics not enabled (controller built without a registry)"))
		return
	}
	// No s.mu: the registry's instruments are independently atomic, which
	// is the standard scrape consistency contract.
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	w.WriteHeader(http.StatusOK)
	_ = reg.WritePrometheus(w)
}
