package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"qvisor/internal/slo"
)

// HealthResponse is the body of GET /v1/healthz. Status is "ok" on a
// server without a watchdog (plain liveness); with one attached it is
// the watchdog's overall burn-rate state ("ok", "warn", or "page") and
// SLOs carries the per-SLO detail. A "page" state answers 503 so plain
// HTTP health checkers fail over without parsing the body.
type HealthResponse struct {
	Status string          `json:"status"`
	SLOs   []slo.SLOHealth `json:"slos,omitempty"`
}

// AttachSLO exposes w's live SLIs via GET /v1/slo and upgrades
// GET /v1/healthz from plain liveness to burn-rate health. Call before
// serving; without a watchdog /v1/slo answers 404 and /v1/healthz stays
// a liveness probe. The watchdog's own lock makes snapshots safe
// against a concurrently running data plane.
func (s *Server) AttachSLO(w *slo.Watchdog) { s.watch = w }

// handleSLO serves the watchdog's full SLI snapshot. The ETag is the
// watchdog's revision — it advances with every sampled event, so a
// matching If-None-Match proves the snapshot is unchanged and the reply
// collapses to 304. qvisorctl slo watch polls on exactly this.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.watch == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			errors.New("api: SLO reporting not enabled (server has no fidelity watchdog)"))
		return
	}
	// One snapshot serves both the ETag and the body, so the pair is
	// consistent even while the data plane keeps sampling.
	snap := s.watch.Snapshot()
	rev := strconv.FormatUint(snap.Revision, 10)
	w.Header().Set("ETag", `"`+rev+`"`)
	if inm := r.Header.Get("If-None-Match"); inm != "" && strings.Trim(inm, `"`) == rev {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: string(slo.StateOK)}
	status := http.StatusOK
	if s.watch != nil {
		snap := s.watch.Snapshot()
		resp.Status = string(snap.State)
		resp.SLOs = snap.Health
		if snap.State == slo.StatePage {
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, resp)
}

// SLO fetches the live fidelity-watchdog snapshot: global and per-tenant
// SLIs plus burn-rate health per SLO. A server without an attached
// watchdog answers *APIError with CodeNotFound.
func (c *Client) SLO(ctx context.Context) (slo.Snapshot, error) {
	var out slo.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/slo", nil, &out)
	return out, err
}

// SLOIfChanged is SLO with revision-based polling: it sends the
// previous snapshot's revision as If-None-Match and reports changed =
// false (with a zero snapshot) on 304. Pass 0 to fetch unconditionally.
func (c *Client) SLOIfChanged(ctx context.Context, revision uint64) (slo.Snapshot, bool, error) {
	var out slo.Snapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/slo", nil)
	if err != nil {
		return out, false, err
	}
	if revision > 0 {
		req.Header.Set("If-None-Match", `"`+strconv.FormatUint(revision, 10)+`"`)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return out, false, nil
	case http.StatusOK:
		return out, true, json.NewDecoder(resp.Body).Decode(&out)
	}
	ae := &APIError{Status: resp.StatusCode, Message: resp.Status}
	var er ErrorResponse
	if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error.Message != "" {
		ae.Code = er.Error.Code
		ae.Message = er.Error.Message
	}
	return out, false, ae
}

// HealthStatus fetches burn-rate health. Unlike Health (which reports a
// paging server as an error, matching plain HTTP checkers), it decodes
// the body on both 200 and 503, so callers see the per-SLO detail
// behind a "page" state.
func (c *Client) HealthStatus(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return out, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable {
		return out, json.NewDecoder(resp.Body).Decode(&out)
	}
	ae := &APIError{Status: resp.StatusCode, Message: resp.Status}
	var er ErrorResponse
	if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error.Message != "" {
		ae.Code = er.Error.Code
		ae.Message = er.Error.Message
	}
	return out, ae
}
