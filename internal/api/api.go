// Package api implements QVISOR's configuration API — the control-plane
// interface of Figure 1 through which tenants register their scheduling
// policies and the operator manages the composition policy.
//
// The API is plain HTTP+JSON on the standard library:
//
//	GET    /v1/policy               the deployed joint policy
//	GET    /v1/spec                 the operator specification + version + epoch
//	PUT    /v1/spec                 replace the specification (re-synthesize);
//	                                prefer PATCH for targeted edits
//	PATCH  /v1/spec                 apply targeted spec ops (add/remove/
//	                                set_weight/demote) without resending the
//	                                whole document
//	GET    /v1/tenants              registered tenants
//	POST   /v1/tenants              DEPRECATED: register one tenant; use
//	                                POST /v1/tenants:batch
//	POST   /v1/tenants:batch        bulk join/leave/update as one transaction
//	                                (one new policy epoch, per-item errors)
//	GET    /v1/tenants/{name}       one tenant registration + content ETag
//	PUT    /v1/tenants/{name}       replace a tenant's definition (conditional
//	                                on its content ETag via If-Match)
//	DELETE /v1/tenants/{name}       DEPRECATED: deregister one tenant; use
//	                                POST /v1/tenants:batch
//	GET    /v1/tenants/{name}/monitor   observed rank distribution
//	GET    /v1/epochs               policy generations: current + draining
//	POST   /v1/check                run one control-loop iteration
//	POST   /v1/compile              guarantee analysis for a target device
//	POST   /v1/fabric               network-wide plan over heterogeneous devices
//	GET    /v1/analyze              worst-case interference analysis
//	GET    /v1/metrics              Prometheus text exposition (internal/obs)
//	GET    /v1/trace                flight-recorder ring snapshot (internal/trace)
//	GET    /v1/slo                  live fidelity SLIs + burn-rate health (internal/slo)
//	GET    /v1/healthz              liveness; burn-rate health when a watchdog
//	                                is attached (503 on "page")
//
// Deprecated routes keep working as thin shims over the same controller
// operations; they answer with "Deprecation: true" and a Link header
// naming the successor so clients can migrate mechanically.
//
// Every non-2xx response carries the JSON error envelope
//
//	{"error": {"code": "unknown_tenant", "message": "..."}}
//
// where code is one of the Code* constants — machine-readable, stable
// across message rewording. Client decodes the envelope into *APIError.
// version_conflict envelopes additionally carry current_version (and the
// response an ETag) so a stale writer can retry without a second GET;
// batch_failed envelopes carry per-item error envelopes under items.
//
// Spec-versioned mutations (PUT/PATCH /v1/spec, POST /v1/tenants,
// POST /v1/tenants:batch, DELETE /v1/tenants/{name}) accept an optional
// If-Match header naming the spec version from GET /v1/spec (bare or
// ETag-quoted); a stale version yields 409 with code version_conflict.
// GET/PUT /v1/tenants/{name} instead use a per-tenant content ETag
// ("t-<hash>", covering name/id/algorithm/bounds/levels): GET returns
// it, PUT's If-Match requires it, so concurrent edits of one tenant are
// detected without serializing on the global spec version.
//
// GET /v1/trace serves the attached flight recorder's ring (see
// Server.AttachTrace). Query parameters tenant, kind (repeatable), and
// limit filter the snapshot; the response carries an ETag derived from
// the recorder's event sequence number, so If-None-Match turns an
// unchanged poll into a 304.
//
// GET /v1/slo serves the attached fidelity watchdog's live snapshot (see
// Server.AttachSLO and internal/slo): shadow-oracle SLIs, per-tenant
// latency/drop/throughput SLIs, and multi-window burn-rate health. The
// ETag is the watchdog revision (count of sampled events), giving the
// same cheap-poll contract as /v1/trace. When a watchdog is attached,
// GET /v1/healthz reports the overall state ("ok"/"warn"/"page") with
// per-SLO detail, answering 503 while paging.
package api

import (
	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/trace"
)

// TenantInfo is the wire representation of a tenant registration.
type TenantInfo struct {
	// Name is the tenant's identifier in operator specs.
	Name string `json:"name"`
	// ID is the packet label value.
	ID pkt.TenantID `json:"id"`
	// Algorithm is a rank-function name (pfabric, edf, fq, ...). May be
	// empty when Bounds are declared directly.
	Algorithm string `json:"algorithm,omitempty"`
	// Bounds overrides the algorithm's declared rank bounds.
	Bounds *BoundsInfo `json:"bounds,omitempty"`
	// Levels overrides the quantization granularity (0 = auto).
	Levels int64 `json:"levels,omitempty"`
	// Flagged reports adversarial flagging (responses only).
	Flagged bool `json:"flagged,omitempty"`
	// Quarantined reports demotion to the bottom tier (responses only).
	Quarantined bool `json:"quarantined,omitempty"`
}

// BoundsInfo is the wire form of a rank interval.
type BoundsInfo struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// JoinRequest registers a tenant. Spec is the full operator specification
// that includes the new tenant.
type JoinRequest struct {
	Tenant TenantInfo `json:"tenant"`
	Spec   string     `json:"spec"`
}

// SpecRequest replaces the operator specification.
type SpecRequest struct {
	Spec string `json:"spec"`
}

// SpecResponse is the operator specification together with its version —
// the number of compilations performed, monotonically increasing with
// every accepted mutation — and the policy epoch it is deployed as. Echo
// the version in If-Match to make a read-modify-write update conditional.
type SpecResponse struct {
	Spec    string `json:"spec"`
	Version uint64 `json:"version"`
	// Epoch is the generation number of the policy epoch publishing this
	// spec (equal to Version under the controller's aligned numbering).
	Epoch uint64 `json:"epoch"`
}

// SpecOpInfo is one targeted edit for PATCH /v1/spec; see policy.Op for
// the op vocabulary (add, remove, set_weight, demote).
type SpecOpInfo struct {
	Op     string `json:"op"`
	Tenant string `json:"tenant"`
	Tier   int    `json:"tier,omitempty"`
	Level  int    `json:"level,omitempty"`
	Weight int64  `json:"weight,omitempty"`
}

// PatchSpecRequest applies targeted ops to the current specification.
type PatchSpecRequest struct {
	Ops []SpecOpInfo `json:"ops"`
}

// BatchOpInfo is one entry of a bulk tenant mutation: op is "join",
// "leave", or "update". Join and update carry the tenant definition;
// leave carries only the name.
type BatchOpInfo struct {
	Op     string      `json:"op"`
	Tenant *TenantInfo `json:"tenant,omitempty"`
	Name   string      `json:"name,omitempty"`
}

// BatchRequest is a bulk tenant mutation: the ops apply as a single
// transaction compiling into ONE new policy epoch, or not at all. Spec,
// when non-empty, replaces the operator specification in the same
// transaction (joins and leaves change the tenant universe, so most
// batches need it).
type BatchRequest struct {
	Ops  []BatchOpInfo `json:"ops"`
	Spec string        `json:"spec,omitempty"`
}

// BatchItemResult reports one batch op's outcome; Error is nil on
// success.
type BatchItemResult struct {
	Op    string     `json:"op"`
	Name  string     `json:"name"`
	Error *ErrorBody `json:"error,omitempty"`
}

// BatchResponse is the outcome of an applied batch: per-item results
// plus the resulting spec, version, and epoch.
type BatchResponse struct {
	Results []BatchItemResult `json:"results"`
	Spec    string            `json:"spec"`
	Version uint64            `json:"version"`
	Epoch   uint64            `json:"epoch"`
}

// LeaveRequest carries the post-departure specification as a query
// parameter (`spec`); no body.

// TransformInfo is the wire form of one rank transformation.
type TransformInfo struct {
	Tenant string `json:"tenant"`
	Lo     int64  `json:"lo"`
	Hi     int64  `json:"hi"`
	Levels int64  `json:"levels"`
	Stride int64  `json:"stride"`
	Phase  int64  `json:"phase"`
	Offset int64  `json:"offset"`
}

// PolicyResponse describes the deployed joint policy.
type PolicyResponse struct {
	Spec       string          `json:"spec"`
	Version    uint64          `json:"version"`
	OutputLo   int64           `json:"output_lo"`
	OutputHi   int64           `json:"output_hi"`
	Transforms []TransformInfo `json:"transforms"`
}

// MonitorResponse is a tenant monitor snapshot.
type MonitorResponse struct {
	Tenant          string  `json:"tenant"`
	Count           uint64  `json:"count"`
	WindowCount     int     `json:"window_count"`
	ObservedLo      int64   `json:"observed_lo"`
	ObservedHi      int64   `json:"observed_hi"`
	P50             int64   `json:"p50"`
	P95             int64   `json:"p95"`
	OutsideFraction float64 `json:"outside_fraction"`
	Drift           float64 `json:"drift"`
}

// CheckResponse reports a control-loop iteration.
type CheckResponse struct {
	Redeployed bool   `json:"redeployed"`
	Version    uint64 `json:"version"`
}

// CompileRequest asks for a guarantee analysis against a target device.
type CompileRequest struct {
	Name        string `json:"name"`
	Sorted      bool   `json:"sorted"`
	Queues      int    `json:"queues"`
	RankRewrite bool   `json:"rank_rewrite"`
	Admission   bool   `json:"admission"`
}

// RequirementInfo grades one obligation of the spec on the target.
type RequirementInfo struct {
	Kind    string   `json:"kind"`
	Tenants []string `json:"tenants"`
	Level   string   `json:"level"`
	Note    string   `json:"note"`
}

// CompileResponse is the guarantee report.
type CompileResponse struct {
	Feasible     bool              `json:"feasible"`
	Requirements []RequirementInfo `json:"requirements"`
	PartialSpec  string            `json:"partial_spec,omitempty"`
	Downgrades   []string          `json:"downgrades,omitempty"`
}

// DeviceInfo describes one fabric device for network-wide planning.
type DeviceInfo struct {
	Name   string         `json:"name"`
	Role   string         `json:"role,omitempty"`
	Target CompileRequest `json:"target"`
}

// FabricRequest asks for a network-wide plan over heterogeneous devices.
type FabricRequest struct {
	Devices []DeviceInfo `json:"devices"`
}

// FabricDevicePlan reports one device's outcome.
type FabricDevicePlan struct {
	Name     string `json:"name"`
	Role     string `json:"role,omitempty"`
	Backend  string `json:"backend"`
	Feasible bool   `json:"feasible"`
}

// FabricResponse is the network-wide guarantee report.
type FabricResponse struct {
	Feasible   bool               `json:"feasible"`
	Guarantees map[string]string  `json:"guarantees"`
	Bottleneck map[string]string  `json:"bottleneck"`
	Devices    []FabricDevicePlan `json:"devices"`
}

// InterferenceInfo is one pair of the worst-case interference matrix.
type InterferenceInfo struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Fraction float64 `json:"fraction"`
	Relation string  `json:"relation"`
}

// AnalyzeResponse is the offline worst-case analysis of the deployed
// policy (§2, Idea 2).
type AnalyzeResponse struct {
	Pairs    []InterferenceInfo `json:"pairs"`
	Isolated []string           `json:"isolated,omitempty"`
}

// TraceResponse is a flight-recorder ring snapshot: the events that
// matched the query filters, oldest first, plus the recorder's sequence
// number (total events ever recorded — the snapshot's ETag value; equal
// sequence numbers imply identical rings).
type TraceResponse struct {
	Seq    uint64        `json:"seq"`
	Events []trace.Event `json:"events"`
}

// Machine-readable error codes carried in the error envelope. Clients
// should branch on these, not on message text.
const (
	// CodeParseError: a request body or spec string failed to parse.
	CodeParseError = "parse_error"
	// CodeBadRequest: the request was well-formed but invalid (missing
	// parameter, malformed If-Match, ...).
	CodeBadRequest = "bad_request"
	// CodeUnknownTenant: the named tenant is not registered.
	CodeUnknownTenant = "unknown_tenant"
	// CodeTenantExists: a registration named an already-present tenant.
	CodeTenantExists = "tenant_exists"
	// CodeSynthFailed: the joint policy could not be re-synthesized for
	// the requested configuration; the previous policy remains deployed.
	CodeSynthFailed = "synth_failed"
	// CodeVersionConflict: If-Match named a stale spec version (or, on
	// PUT /v1/tenants/{name}, a stale tenant content ETag).
	CodeVersionConflict = "version_conflict"
	// CodeBatchFailed: a tenants:batch transaction had failing items and
	// was not applied; the envelope's items list the per-op errors.
	CodeBatchFailed = "batch_failed"
	// CodeInvalidTarget: a compile/fabric target description was invalid.
	CodeInvalidTarget = "invalid_target"
	// CodeNotFound: no route matched the request path.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the route exists but not for this method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorBody is the payload of the error envelope: a stable machine-readable
// code plus a human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// CurrentVersion accompanies version_conflict: the spec version in
	// force, so the client can retry without a second GET.
	CurrentVersion uint64 `json:"current_version,omitempty"`
	// Items accompanies batch_failed: one result per batch op.
	Items []BatchItemResult `json:"items,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// toTenant converts a wire registration to a core tenant.
func (ti TenantInfo) toTenant() (*core.Tenant, error) {
	t := &core.Tenant{ID: ti.ID, Name: ti.Name, Levels: ti.Levels}
	if ti.Algorithm != "" {
		r, err := rank.ByName(ti.Algorithm)
		if err != nil {
			return nil, err
		}
		t.Algorithm = r
	}
	if ti.Bounds != nil {
		t.Bounds = rank.Bounds{Lo: ti.Bounds.Lo, Hi: ti.Bounds.Hi}
	}
	return t, nil
}

func tenantInfo(t *core.Tenant, flagged, quarantined bool) TenantInfo {
	ti := TenantInfo{
		Name:        t.Name,
		ID:          t.ID,
		Levels:      t.Levels,
		Flagged:     flagged,
		Quarantined: quarantined,
	}
	if t.Algorithm != nil {
		ti.Algorithm = t.Algorithm.Name()
	}
	if t.Bounds != (rank.Bounds{}) {
		ti.Bounds = &BoundsInfo{Lo: t.Bounds.Lo, Hi: t.Bounds.Hi}
	}
	return ti
}
