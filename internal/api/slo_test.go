package api

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
)

// churn drives n enqueue/dequeue pairs through pw starting at time
// start, in order (healthy) or inverted (every pair a rank inversion).
func churn(pw *slo.PortWatch, start sim.Time, n int, invert bool) {
	id := uint64(start) * 1_000_000
	for i := 0; i < n; i++ {
		now := start + sim.Time(i)
		low := &pkt.Packet{ID: id, Flow: 0, Tenant: 1, Rank: 10, Size: 1000}
		high := &pkt.Packet{ID: id + 1, Flow: 0, Tenant: 1, Rank: 50, Size: 1000}
		id += 2
		pw.OnEnqueue(now, low)
		pw.OnEnqueue(now, high)
		if invert {
			pw.OnDequeue(now, high)
			pw.OnDequeue(now, low)
		} else {
			pw.OnDequeue(now, low)
			pw.OnDequeue(now, high)
		}
	}
}

func newSLOServer(t *testing.T) (*Client, *slo.Watchdog, *slo.PortWatch) {
	t.Helper()
	w := slo.New(slo.Config{SampleN: 1, WindowNs: 1000})
	c, _, ts := newTestServerRaw(t)
	ts.Config.Handler.(*Server).AttachSLO(w)
	return c, w, w.PortWatch()
}

// TestSLODisabled: a server without a watchdog has no SLO endpoint, and
// its healthz stays the plain liveness probe.
func TestSLODisabled(t *testing.T) {
	c, _, _ := newTestServerRaw(t)
	ctx := context.Background()
	_, err := c.SLO(ctx)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || ae.Code != CodeNotFound {
		t.Fatalf("SLO without watchdog: err = %v, want 404 %s", err, CodeNotFound)
	}
	h, err := c.HealthStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.SLOs) != 0 {
		t.Fatalf("healthz without watchdog = %+v, want plain ok", h)
	}
}

// TestSLOEndpoint: the snapshot round-trips through the wire with its
// SLIs intact, and the ETag/If-None-Match pair collapses unchanged
// polls to 304.
func TestSLOEndpoint(t *testing.T) {
	c, _, pw := newSLOServer(t)
	ctx := context.Background()
	churn(pw, 0, 500, false)

	snap, err := c.SLO(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != slo.StateOK {
		t.Fatalf("state = %s, want ok", snap.State)
	}
	if snap.Global.SampledDequeues != 1000 || snap.Global.Inversions != 0 {
		t.Fatalf("global SLIs did not survive the wire: %+v", snap.Global)
	}
	if len(snap.Health) != 3 || len(snap.Tenants) != 1 {
		t.Fatalf("health/tenants = %d/%d, want 3/1", len(snap.Health), len(snap.Tenants))
	}
	if snap.Revision == 0 {
		t.Fatal("revision = 0; ETag polling would never settle")
	}

	// Unchanged watchdog → 304 with no body.
	if _, changed, err := c.SLOIfChanged(ctx, snap.Revision); err != nil || changed {
		t.Fatalf("poll at current revision: changed=%v err=%v, want 304", changed, err)
	}
	// New sampled events advance the revision and the poll sees them.
	churn(pw, 1000, 10, false)
	snap2, changed, err := c.SLOIfChanged(ctx, snap.Revision)
	if err != nil || !changed {
		t.Fatalf("poll after churn: changed=%v err=%v, want changed", changed, err)
	}
	if snap2.Revision <= snap.Revision {
		t.Fatalf("revision did not advance: %d -> %d", snap.Revision, snap2.Revision)
	}
}

// TestHealthzBurnStates drives the watchdog through ok → page and
// checks the healthz contract at each step: body status, per-SLO
// detail, and the 503 on page that plain HTTP checkers key on.
func TestHealthzBurnStates(t *testing.T) {
	c, _, pw := newSLOServer(t)
	ctx := context.Background()

	churn(pw, 0, 100, false)
	h, err := c.HealthStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != string(slo.StateOK) || len(h.SLOs) != 3 {
		t.Fatalf("healthy: %+v, want ok with 3 SLOs", h)
	}
	// Health() (the liveness view) agrees.
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthy server failed liveness: %v", err)
	}

	// 50% inversions on both burn horizons → PAGE → 503.
	churn(pw, 200, 500, true)
	resp, err := http.Get(srvURL(t, c) + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("paging healthz status = %d, want 503", resp.StatusCode)
	}
	h2, err := c.HealthStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Status != string(slo.StatePage) {
		t.Fatalf("paging status = %q, want page", h2.Status)
	}
	paged := false
	for _, s := range h2.SLOs {
		if s.Name == slo.SLOInversions && s.State == slo.StatePage {
			paged = true
			if s.BurnShort < slo.DefaultPageBurn || s.BurnLong < slo.DefaultPageBurn {
				t.Errorf("paging burns %g/%g below threshold %g",
					s.BurnShort, s.BurnLong, slo.DefaultPageBurn)
			}
		}
	}
	if !paged {
		t.Fatalf("no paging inversion SLO in detail: %+v", h2.SLOs)
	}
	// The liveness view reports the page as an error.
	if err := c.Health(ctx); err == nil {
		t.Fatal("liveness check passed on a paging server")
	}
}

// TestSLOIntegrationPagesViaAPI is the end-to-end acceptance path at the
// API layer: a watchdog absorbed from a faulty run (simulated here by
// hand-driven inversions, the netsim integration lives in
// internal/netsim) flips /v1/healthz through the server, not through
// package internals.
func TestSLOIntegrationPagesViaAPI(t *testing.T) {
	// Shard-merge then serve: the server must see absorbed state.
	parent := slo.New(slo.Config{SampleN: 1, WindowNs: 1000})
	child := parent.Shard(0)
	churn(child.PortWatch(), 0, 500, true)
	parent.Absorb(child)

	c, _, ts := newTestServerRaw(t)
	ts.Config.Handler.(*Server).AttachSLO(parent)
	snap, err := c.SLO(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != slo.StatePage || snap.Global.Inversions != 500 {
		t.Fatalf("absorbed snapshot over the wire: state=%s inversions=%d, want page/500",
			snap.State, snap.Global.Inversions)
	}
}
