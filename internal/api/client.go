package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"qvisor/internal/core"
)

// Client is a typed client for QVISOR's configuration API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:7474"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// APIError is a decoded non-2xx reply. Code is one of the Code* constants
// (empty when the server sent no envelope); branch on it with errors.As:
//
//	var ae *api.APIError
//	if errors.As(err, &ae) && ae.Code == api.CodeVersionConflict { ... }
type APIError struct {
	Status  int
	Code    string
	Message string
	// CurrentVersion carries the live spec version on CodeVersionConflict
	// replies, so the caller can retry without a second GET.
	CurrentVersion uint64
	// Items carries the per-op outcomes on CodeBatchFailed replies.
	Items []BatchItemResult
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("api: HTTP %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("api: HTTP %d (%s): %s", e.Status, e.Code, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doIfMatch(ctx, method, path, "", in, out)
}

// doIfMatch is do with an optional If-Match header carrying a spec version
// for optimistic concurrency (empty sends no header).
func (c *Client) doIfMatch(ctx context.Context, method, path, ifMatch string, in, out any) error {
	_, err := c.doHdr(ctx, method, path, ifMatch, in, out)
	return err
}

// doHdr is doIfMatch exposing the response headers, for routes whose
// ETag carries information beyond the spec version (per-tenant content
// tags). Headers are returned even on API errors, nil only on transport
// failures.
func (c *Client) doHdr(ctx context.Context, method, path, ifMatch string, in, out any) (http.Header, error) {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if ifMatch != "" {
		req.Header.Set("If-Match", ifMatch)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{Status: resp.StatusCode, Message: resp.Status}
		var er ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error.Message != "" {
			ae.Code = er.Error.Code
			ae.Message = er.Error.Message
			ae.CurrentVersion = er.Error.CurrentVersion
			ae.Items = er.Error.Items
		}
		return resp.Header, ae
	}
	if out == nil {
		return resp.Header, nil
	}
	return resp.Header, json.NewDecoder(resp.Body).Decode(out)
}

func ifMatchValue(version uint64) string {
	return strconv.FormatUint(version, 10)
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Policy fetches the deployed joint policy.
func (c *Client) Policy(ctx context.Context) (PolicyResponse, error) {
	var out PolicyResponse
	err := c.do(ctx, http.MethodGet, "/v1/policy", nil, &out)
	return out, err
}

// Spec fetches the operator specification.
func (c *Client) Spec(ctx context.Context) (string, error) {
	out, err := c.SpecVersion(ctx)
	return out.Spec, err
}

// SpecVersion fetches the operator specification together with its version
// for use in If-Match-conditional updates.
func (c *Client) SpecVersion(ctx context.Context) (SpecResponse, error) {
	var out SpecResponse
	err := c.do(ctx, http.MethodGet, "/v1/spec", nil, &out)
	return out, err
}

// SetSpec replaces the operator specification unconditionally.
func (c *Client) SetSpec(ctx context.Context, spec string) error {
	return c.do(ctx, http.MethodPut, "/v1/spec", SpecRequest{Spec: spec}, nil)
}

// SetSpecIfMatch replaces the operator specification only if the deployed
// version still equals version; a concurrent change yields an *APIError
// with CodeVersionConflict.
func (c *Client) SetSpecIfMatch(ctx context.Context, spec string, version uint64) (SpecResponse, error) {
	var out SpecResponse
	err := c.doIfMatch(ctx, http.MethodPut, "/v1/spec", ifMatchValue(version),
		SpecRequest{Spec: spec}, &out)
	return out, err
}

// Tenants lists the registered tenants.
func (c *Client) Tenants(ctx context.Context) ([]TenantInfo, error) {
	var out []TenantInfo
	err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &out)
	return out, err
}

// Join registers a tenant under a new operator specification.
func (c *Client) Join(ctx context.Context, t TenantInfo, spec string) error {
	return c.do(ctx, http.MethodPost, "/v1/tenants", JoinRequest{Tenant: t, Spec: spec}, nil)
}

// JoinIfMatch is Join conditional on the spec version (see SetSpecIfMatch).
func (c *Client) JoinIfMatch(ctx context.Context, t TenantInfo, spec string, version uint64) error {
	return c.doIfMatch(ctx, http.MethodPost, "/v1/tenants", ifMatchValue(version),
		JoinRequest{Tenant: t, Spec: spec}, nil)
}

// Leave deregisters a tenant; spec is the specification after departure.
func (c *Client) Leave(ctx context.Context, name, spec string) error {
	path := "/v1/tenants/" + url.PathEscape(name) + "?spec=" + url.QueryEscape(spec)
	return c.do(ctx, http.MethodDelete, path, nil, nil)
}

// LeaveIfMatch is Leave conditional on the spec version (see
// SetSpecIfMatch).
func (c *Client) LeaveIfMatch(ctx context.Context, name, spec string, version uint64) error {
	path := "/v1/tenants/" + url.PathEscape(name) + "?spec=" + url.QueryEscape(spec)
	return c.doIfMatch(ctx, http.MethodDelete, path, ifMatchValue(version), nil, nil)
}

// Batch applies a bulk tenant mutation (joins, leaves, updates, and an
// optional new spec) as one transaction compiling into a single policy
// epoch. On CodeBatchFailed the returned *APIError's Items report each
// op's outcome and nothing was applied.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants:batch", req, &out)
	return out, err
}

// BatchIfMatch is Batch conditional on the spec version (see
// SetSpecIfMatch).
func (c *Client) BatchIfMatch(ctx context.Context, req BatchRequest, version uint64) (BatchResponse, error) {
	var out BatchResponse
	err := c.doIfMatch(ctx, http.MethodPost, "/v1/tenants:batch", ifMatchValue(version), req, &out)
	return out, err
}

// PatchSpec applies targeted ops to the operator specification without
// resending the whole document.
func (c *Client) PatchSpec(ctx context.Context, ops []SpecOpInfo) (SpecResponse, error) {
	var out SpecResponse
	err := c.do(ctx, http.MethodPatch, "/v1/spec", PatchSpecRequest{Ops: ops}, &out)
	return out, err
}

// PatchSpecIfMatch is PatchSpec conditional on the spec version (see
// SetSpecIfMatch).
func (c *Client) PatchSpecIfMatch(ctx context.Context, ops []SpecOpInfo, version uint64) (SpecResponse, error) {
	var out SpecResponse
	err := c.doIfMatch(ctx, http.MethodPatch, "/v1/spec", ifMatchValue(version),
		PatchSpecRequest{Ops: ops}, &out)
	return out, err
}

// Tenant fetches one registration together with its content ETag, for
// use in a conditional PutTenant.
func (c *Client) Tenant(ctx context.Context, name string) (TenantInfo, string, error) {
	var out TenantInfo
	hdr, err := c.doHdr(ctx, http.MethodGet, "/v1/tenants/"+url.PathEscape(name), "", nil, &out)
	etag := ""
	if hdr != nil {
		etag = strings.Trim(hdr.Get("ETag"), `"`)
	}
	return out, etag, err
}

// PutTenant replaces one tenant's definition (bounds, algorithm,
// levels). A non-empty etag (from Tenant) makes the replacement
// conditional: a concurrent edit yields CodeVersionConflict. The new
// content ETag is returned.
func (c *Client) PutTenant(ctx context.Context, t TenantInfo, etag string) (TenantInfo, string, error) {
	var out TenantInfo
	hdr, err := c.doHdr(ctx, http.MethodPut, "/v1/tenants/"+url.PathEscape(t.Name), etag, t, &out)
	newTag := ""
	if hdr != nil {
		newTag = strings.Trim(hdr.Get("ETag"), `"`)
	}
	return out, newTag, err
}

// Epochs fetches the policy-generation view: current epoch, draining
// epochs with their in-flight packet counts, and the publish total.
func (c *Client) Epochs(ctx context.Context) (core.EpochGenerations, error) {
	var out core.EpochGenerations
	err := c.do(ctx, http.MethodGet, "/v1/epochs", nil, &out)
	return out, err
}

// Monitor fetches a tenant's observed rank distribution.
func (c *Client) Monitor(ctx context.Context, name string) (MonitorResponse, error) {
	var out MonitorResponse
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+url.PathEscape(name)+"/monitor", nil, &out)
	return out, err
}

// Check runs one control-loop iteration.
func (c *Client) Check(ctx context.Context) (CheckResponse, error) {
	var out CheckResponse
	err := c.do(ctx, http.MethodPost, "/v1/check", nil, &out)
	return out, err
}

// Compile asks for the guarantee analysis against a target device.
func (c *Client) Compile(ctx context.Context, target CompileRequest) (CompileResponse, error) {
	var out CompileResponse
	err := c.do(ctx, http.MethodPost, "/v1/compile", target, &out)
	return out, err
}

// Analyze fetches the worst-case interference analysis of the deployed
// policy.
func (c *Client) Analyze(ctx context.Context) (AnalyzeResponse, error) {
	var out AnalyzeResponse
	err := c.do(ctx, http.MethodGet, "/v1/analyze", nil, &out)
	return out, err
}

// Fabric asks for the network-wide plan over a heterogeneous device set.
func (c *Client) Fabric(ctx context.Context, devices []DeviceInfo) (FabricResponse, error) {
	var out FabricResponse
	err := c.do(ctx, http.MethodPost, "/v1/fabric", FabricRequest{Devices: devices}, &out)
	return out, err
}

// TraceFilter narrows a Client.Trace request. The zero value fetches
// every event; Tenant filters only when >= 0 (use AllTrace, whose Tenant
// is -1, as a starting point when tenant 0 must remain unfiltered).
type TraceFilter struct {
	// Tenant keeps only this tenant's events when >= 0.
	Tenant int
	// Kinds keeps only the listed event kinds (nil = all).
	Kinds []string
	// Limit keeps only the most recent Limit matching events when > 0.
	Limit int
}

// AllTrace matches every recorded event.
var AllTrace = TraceFilter{Tenant: -1}

// Trace fetches a filtered snapshot of the server's flight-recorder
// ring. A server without an attached recorder answers *APIError with
// CodeNotFound.
func (c *Client) Trace(ctx context.Context, f TraceFilter) (TraceResponse, error) {
	q := url.Values{}
	if f.Tenant >= 0 {
		q.Set("tenant", strconv.Itoa(f.Tenant))
	}
	for _, k := range f.Kinds {
		q.Add("kind", k)
	}
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	path := "/v1/trace"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out TraceResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Metrics fetches the server's metrics in Prometheus text exposition
// format.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ae := &APIError{Status: resp.StatusCode, Message: resp.Status}
		var er ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error.Message != "" {
			ae.Code = er.Error.Code
			ae.Message = er.Error.Message
		}
		return "", ae
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
