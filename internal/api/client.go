package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client is a typed client for QVISOR's configuration API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:7474"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// APIError is a non-2xx reply.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("api: HTTP %d: %s", e.Status, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er ErrorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Policy fetches the deployed joint policy.
func (c *Client) Policy(ctx context.Context) (PolicyResponse, error) {
	var out PolicyResponse
	err := c.do(ctx, http.MethodGet, "/v1/policy", nil, &out)
	return out, err
}

// Spec fetches the operator specification.
func (c *Client) Spec(ctx context.Context) (string, error) {
	var out SpecRequest
	err := c.do(ctx, http.MethodGet, "/v1/spec", nil, &out)
	return out.Spec, err
}

// SetSpec replaces the operator specification.
func (c *Client) SetSpec(ctx context.Context, spec string) error {
	return c.do(ctx, http.MethodPut, "/v1/spec", SpecRequest{Spec: spec}, nil)
}

// Tenants lists the registered tenants.
func (c *Client) Tenants(ctx context.Context) ([]TenantInfo, error) {
	var out []TenantInfo
	err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &out)
	return out, err
}

// Join registers a tenant under a new operator specification.
func (c *Client) Join(ctx context.Context, t TenantInfo, spec string) error {
	return c.do(ctx, http.MethodPost, "/v1/tenants", JoinRequest{Tenant: t, Spec: spec}, nil)
}

// Leave deregisters a tenant; spec is the specification after departure.
func (c *Client) Leave(ctx context.Context, name, spec string) error {
	path := "/v1/tenants/" + url.PathEscape(name) + "?spec=" + url.QueryEscape(spec)
	return c.do(ctx, http.MethodDelete, path, nil, nil)
}

// Monitor fetches a tenant's observed rank distribution.
func (c *Client) Monitor(ctx context.Context, name string) (MonitorResponse, error) {
	var out MonitorResponse
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+url.PathEscape(name)+"/monitor", nil, &out)
	return out, err
}

// Check runs one control-loop iteration.
func (c *Client) Check(ctx context.Context) (CheckResponse, error) {
	var out CheckResponse
	err := c.do(ctx, http.MethodPost, "/v1/check", nil, &out)
	return out, err
}

// Compile asks for the guarantee analysis against a target device.
func (c *Client) Compile(ctx context.Context, target CompileRequest) (CompileResponse, error) {
	var out CompileResponse
	err := c.do(ctx, http.MethodPost, "/v1/compile", target, &out)
	return out, err
}

// Analyze fetches the worst-case interference analysis of the deployed
// policy.
func (c *Client) Analyze(ctx context.Context) (AnalyzeResponse, error) {
	var out AnalyzeResponse
	err := c.do(ctx, http.MethodGet, "/v1/analyze", nil, &out)
	return out, err
}

// Fabric asks for the network-wide plan over a heterogeneous device set.
func (c *Client) Fabric(ctx context.Context, devices []DeviceInfo) (FabricResponse, error) {
	var out FabricResponse
	err := c.do(ctx, http.MethodPost, "/v1/fabric", FabricRequest{Devices: devices}, &out)
	return out, err
}
