package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sim"
)

func newTestServer(t *testing.T, opts core.ControllerOptions) (*Client, *core.Controller, *httptest.Server) {
	t.Helper()
	tenants := []*core.Tenant{
		{ID: 1, Name: "web", Algorithm: &rank.PFabric{}},
		{ID: 2, Name: "deadline", Algorithm: &rank.EDF{}},
	}
	ctl, _, err := core.NewController(tenants, policy.MustParse("web >> deadline"), opts)
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Time
	srv := NewServer(ctl, func() sim.Time { now += sim.Millisecond; return now })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), ctl, ts
}

func TestHealth(t *testing.T) {
	c, _, _ := newTestServer(t, core.ControllerOptions{})
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyEndpoint(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	p, err := c.Policy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec != "web >> deadline" {
		t.Fatalf("spec = %q", p.Spec)
	}
	if p.Version != ctl.Version() {
		t.Fatalf("version = %d, want %d", p.Version, ctl.Version())
	}
	if len(p.Transforms) != 2 {
		t.Fatalf("transforms = %d", len(p.Transforms))
	}
	if p.Transforms[0].Tenant != "web" || p.Transforms[1].Tenant != "deadline" {
		t.Fatalf("transform order: %+v", p.Transforms)
	}
	if p.OutputHi <= p.OutputLo {
		t.Fatalf("output bounds: [%d,%d]", p.OutputLo, p.OutputHi)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	spec, err := c.Spec(ctx)
	if err != nil || spec != "web >> deadline" {
		t.Fatalf("Spec = %q, %v", spec, err)
	}
	if err := c.SetSpec(ctx, "web + deadline"); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Spec().String(); got != "web + deadline" {
		t.Fatalf("controller spec = %q", got)
	}
	if ctl.Version() != 2 {
		t.Fatalf("version = %d, want 2 after update", ctl.Version())
	}
	// Bad spec: rejected, state unchanged.
	if err := c.SetSpec(ctx, ">>"); err == nil {
		t.Fatal("bad spec accepted")
	}
	// Spec missing a tenant: rejected with conflict.
	err = c.SetSpec(ctx, "web")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusConflict {
		t.Fatalf("err = %v, want 409", err)
	}
	if got := ctl.Spec().String(); got != "web + deadline" {
		t.Fatalf("failed update mutated spec: %q", got)
	}
}

func TestTenantLifecycle(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()

	// Join a third tenant.
	err := c.Join(ctx, TenantInfo{
		Name: "batch", ID: 3, Algorithm: "fq",
	}, "web >> deadline + batch")
	if err != nil {
		t.Fatal(err)
	}
	tenants, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 3 {
		t.Fatalf("tenants = %d", len(tenants))
	}
	names := map[string]bool{}
	for _, ti := range tenants {
		names[ti.Name] = true
	}
	if !names["batch"] {
		t.Fatalf("batch missing: %+v", tenants)
	}

	// Duplicate join: conflict.
	err = c.Join(ctx, TenantInfo{Name: "batch", ID: 9, Algorithm: "fq"}, "web >> deadline + batch")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusConflict {
		t.Fatalf("duplicate join err = %v, want 409", err)
	}

	// Leave.
	if err := c.Leave(ctx, "batch", "web >> deadline"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctl.Policy().TransformOf("batch"); ok {
		t.Fatal("batch still deployed after leave")
	}
	// Leaving again: 404.
	err = c.Leave(ctx, "batch", "web >> deadline")
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("double leave err = %v, want 404", err)
	}
	// Leave without spec: 400.
	resp, err := http.DefaultClient.Do(mustReq(t, http.MethodDelete, srvURL(t, c)+"/v1/tenants/web"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing spec: status %d, want 400", resp.StatusCode)
	}
}

func TestJoinValidation(t *testing.T) {
	c, _, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	// Unknown algorithm.
	if err := c.Join(ctx, TenantInfo{Name: "x", ID: 9, Algorithm: "nope"}, "web >> deadline >> x"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Bad spec.
	if err := c.Join(ctx, TenantInfo{Name: "x", ID: 9, Algorithm: "fq"}, "+++"); err == nil {
		t.Fatal("bad spec accepted")
	}
	// Bounds-only tenant is fine.
	if err := c.Join(ctx, TenantInfo{
		Name: "y", ID: 10, Bounds: &BoundsInfo{Lo: 0, Hi: 99},
	}, "web >> deadline >> y"); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorEndpoint(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	for i := int64(0); i < 100; i++ {
		ctl.Observe(1, i*1000)
	}
	m, err := c.Monitor(ctx, "web")
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 100 || m.WindowCount != 100 {
		t.Fatalf("monitor counts: %+v", m)
	}
	if m.ObservedHi != 99000 {
		t.Fatalf("observed hi = %d", m.ObservedHi)
	}
	if _, err := c.Monitor(ctx, "ghost"); err == nil {
		t.Fatal("unknown tenant monitor should 404")
	}
}

func TestCheckEndpoint(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{
		MinObservations: 10,
		WindowSize:      64,
	})
	ctx := context.Background()
	// No drift yet.
	res, err := c.Check(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redeployed {
		t.Fatal("no observations: must not redeploy")
	}
	// Force drift on the web tenant (declared [0,2^30]; emit far above).
	for i := 0; i < 64; i++ {
		ctl.Observe(1, 1<<40)
	}
	res, err = c.Check(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Redeployed {
		t.Fatal("drift should redeploy")
	}
	if res.Version != ctl.Version() {
		t.Fatalf("version mismatch: %d vs %d", res.Version, ctl.Version())
	}
}

func TestCompileEndpoint(t *testing.T) {
	c, _, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	resp, err := c.Compile(ctx, CompileRequest{Name: "sw", Queues: 8, RankRewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Feasible {
		t.Fatal("2 tiers on 8 queues should be feasible")
	}
	if len(resp.Requirements) == 0 {
		t.Fatal("no requirements reported")
	}
	// Infeasible target: 1 queue for 2 tiers.
	resp, err = c.Compile(ctx, CompileRequest{Name: "tiny", Queues: 1, RankRewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Feasible || resp.PartialSpec == "" {
		t.Fatalf("expected partial proposal: %+v", resp)
	}
	// Broken target: error.
	if _, err := c.Compile(ctx, CompileRequest{Name: "none"}); err == nil {
		t.Fatal("target without resources should fail")
	}
}

func TestBadJSONRejected(t *testing.T) {
	_, ctl, ts := newTestServerRaw(t)
	_ = ctl
	resp, err := http.Post(ts.URL+"/v1/tenants", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error.Message == "" {
		t.Fatalf("error body missing: %v %+v", err, er)
	}
	if er.Error.Code != CodeParseError {
		t.Fatalf("code = %q, want %q", er.Error.Code, CodeParseError)
	}
	// Unknown fields are rejected too.
	resp2, err := http.Post(ts.URL+"/v1/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("check status %d", resp2.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	_, _, ts := newTestServerRaw(t)
	// Wrong method on /v1/policy.
	resp, err := http.Post(ts.URL+"/v1/policy", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/policy status %d, want 405", resp.StatusCode)
	}
	// Unknown path.
	resp, err = http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", resp.StatusCode)
	}
}

func newTestServerRaw(t *testing.T) (*Client, *core.Controller, *httptest.Server) {
	return newTestServer(t, core.ControllerOptions{})
}

func mustReq(t *testing.T, method, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func srvURL(t *testing.T, c *Client) string {
	t.Helper()
	return c.base
}

func TestFabricEndpoint(t *testing.T) {
	c, _, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	resp, err := c.Fabric(ctx, []DeviceInfo{
		{Name: "leaf0", Role: "leaf", Target: CompileRequest{Name: "pifo", Sorted: true, RankRewrite: true}},
		{Name: "spine0", Role: "spine", Target: CompileRequest{Name: "8q", Queues: 8, RankRewrite: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Feasible {
		t.Fatal("fabric should be feasible")
	}
	if resp.Guarantees["intra-tenant order"] != "approximate" {
		t.Fatalf("guarantees: %+v", resp.Guarantees)
	}
	if resp.Bottleneck["intra-tenant order"] != "spine0" {
		t.Fatalf("bottleneck: %+v", resp.Bottleneck)
	}
	if len(resp.Devices) != 2 || resp.Devices[0].Backend != "pifo" {
		t.Fatalf("devices: %+v", resp.Devices)
	}
	// Validation errors propagate.
	if _, err := c.Fabric(ctx, nil); err == nil {
		t.Fatal("empty fabric accepted")
	}
	if _, err := c.Fabric(ctx, []DeviceInfo{{Name: "x"}}); err == nil {
		t.Fatal("resourceless device accepted")
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	c, _, ts := newTestServerRaw(t)
	_ = c
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ar AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	// web >> deadline: web preempts 100% of deadline and is isolated.
	if len(ar.Pairs) != 1 || ar.Pairs[0].From != "web" || ar.Pairs[0].Fraction != 1.0 {
		t.Fatalf("pairs: %+v", ar.Pairs)
	}
	if len(ar.Isolated) != 1 || ar.Isolated[0] != "web" {
		t.Fatalf("isolated: %v", ar.Isolated)
	}
}

// TestConcurrentRequests hammers the server from many goroutines; the
// internal mutex must serialize controller access (validated under
// go test -race).
func TestConcurrentRequests(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{MinObservations: 10})
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		ctl.Observe(1, int64(i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 400)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := c.Policy(ctx); err != nil {
						errs <- err
					}
				case 1:
					if _, err := c.Monitor(ctx, "web"); err != nil {
						errs <- err
					}
				case 2:
					if _, err := c.Check(ctx); err != nil {
						errs <- err
					}
				case 3:
					if _, err := c.Tenants(ctx); err != nil {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
