package api

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"qvisor/internal/core"
)

func TestBatchEndpoint(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	before := ctl.Version()

	resp, err := c.Batch(ctx, BatchRequest{
		Ops: []BatchOpInfo{
			{Op: "join", Tenant: &TenantInfo{Name: "batch", ID: 3, Algorithm: "fq"}},
			{Op: "update", Tenant: &TenantInfo{Name: "web", ID: 1, Algorithm: "pfabric",
				Bounds: &BoundsInfo{Lo: 0, Hi: 5000}}},
			{Op: "leave", Name: "deadline"},
		},
		Spec: "web >> batch",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Error != nil {
			t.Fatalf("item %d (%s %s) failed: %+v", i, r.Op, r.Name, r.Error)
		}
	}
	if resp.Spec != "web >> batch" {
		t.Fatalf("spec = %q", resp.Spec)
	}
	// The whole batch compiled into exactly one new version and epoch.
	if resp.Version != before+1 || resp.Version != ctl.Version() {
		t.Fatalf("version = %d, want %d", resp.Version, before+1)
	}
	if resp.Epoch != resp.Version {
		t.Fatalf("epoch = %d, want %d (aligned numbering)", resp.Epoch, resp.Version)
	}
	if cur := ctl.Epochs().Current(); cur == nil || cur.Gen != resp.Epoch {
		t.Fatalf("store current = %+v, want gen %d", cur, resp.Epoch)
	}
	if _, ok := ctl.Tenant("deadline"); ok {
		t.Fatal("left tenant still registered")
	}
	if tn, ok := ctl.Tenant("web"); !ok || tn.Bounds.Hi != 5000 {
		t.Fatalf("update not applied: %+v", tn)
	}
}

func TestBatchAtomicity(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	before := ctl.Version()

	// One bad op poisons the whole transaction; the envelope reports every
	// op's outcome and nothing is applied.
	_, err := c.Batch(ctx, BatchRequest{
		Ops: []BatchOpInfo{
			{Op: "join", Tenant: &TenantInfo{Name: "ok", ID: 3, Algorithm: "fq"}},
			{Op: "join", Tenant: &TenantInfo{Name: "web", ID: 4, Algorithm: "fq"}},
			{Op: "leave", Name: "nope"},
		},
		Spec: "web >> deadline >> ok",
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeBatchFailed {
		t.Fatalf("err = %v, want %s", err, CodeBatchFailed)
	}
	if len(ae.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(ae.Items))
	}
	if ae.Items[0].Error != nil {
		t.Errorf("valid join reported: %+v", ae.Items[0].Error)
	}
	if ae.Items[1].Error == nil || ae.Items[1].Error.Code != CodeTenantExists {
		t.Errorf("duplicate join: %+v", ae.Items[1].Error)
	}
	if ae.Items[2].Error == nil || ae.Items[2].Error.Code != CodeUnknownTenant {
		t.Errorf("unknown leave: %+v", ae.Items[2].Error)
	}
	if ctl.Version() != before {
		t.Fatalf("failed batch bumped version %d -> %d", before, ctl.Version())
	}
	if _, ok := ctl.Tenant("ok"); ok {
		t.Fatal("failed batch registered a tenant")
	}
}

func TestBatchValidation(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	var ae *APIError

	// No ops at all: plain bad request, not a batch envelope.
	if _, err := c.Batch(ctx, BatchRequest{}); !errors.As(err, &ae) || ae.Code != CodeBadRequest {
		t.Fatalf("empty batch: %v", err)
	}
	// Malformed ops fail item-by-item before touching the controller.
	_, err := c.Batch(ctx, BatchRequest{Ops: []BatchOpInfo{
		{Op: "promote", Name: "web"},
		{Op: "join"},
		{Op: "leave"},
	}})
	if !errors.As(err, &ae) || ae.Code != CodeBatchFailed {
		t.Fatalf("malformed ops: %v", err)
	}
	for i, it := range ae.Items {
		if it.Error == nil || it.Error.Code != CodeBadRequest {
			t.Errorf("item %d: %+v", i, it.Error)
		}
	}
	// A batch whose spec doesn't cover the new tenant set stages fine but
	// the joint compile rejects it as one unit.
	before := ctl.Version()
	_, err = c.Batch(ctx, BatchRequest{Ops: []BatchOpInfo{
		{Op: "join", Tenant: &TenantInfo{Name: "ghost", ID: 9, Algorithm: "fq"}},
	}})
	if !errors.As(err, &ae) || ae.Code != CodeSynthFailed {
		t.Fatalf("uncovered join: %v", err)
	}
	if ctl.Version() != before {
		t.Fatal("rejected batch bumped the version")
	}
	// Stale If-Match short-circuits with the live version in the envelope.
	_, err = c.BatchIfMatch(ctx, BatchRequest{Ops: []BatchOpInfo{
		{Op: "leave", Name: "deadline"},
	}, Spec: "web"}, before+100)
	if !errors.As(err, &ae) || ae.Code != CodeVersionConflict {
		t.Fatalf("stale batch: %v", err)
	}
	if ae.CurrentVersion != ctl.Version() {
		t.Fatalf("current_version = %d, want %d", ae.CurrentVersion, ctl.Version())
	}
}

func TestPatchSpecEndpoint(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()
	before := ctl.Version()

	resp, err := c.PatchSpec(ctx, []SpecOpInfo{
		{Op: "set_weight", Tenant: "web", Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Spec != "web*2 >> deadline" {
		t.Fatalf("spec = %q", resp.Spec)
	}
	if resp.Version != before+1 || resp.Epoch != resp.Version {
		t.Fatalf("version/epoch = %d/%d, want %d/%d",
			resp.Version, resp.Epoch, before+1, before+1)
	}

	var ae *APIError
	// Empty patches and op-level failures are 400s that leave the spec
	// untouched.
	if _, err := c.PatchSpec(ctx, nil); !errors.As(err, &ae) || ae.Code != CodeBadRequest {
		t.Fatalf("empty patch: %v", err)
	}
	_, err = c.PatchSpec(ctx, []SpecOpInfo{{Op: "remove", Tenant: "nope"}})
	if !errors.As(err, &ae) || ae.Code != CodeBadRequest {
		t.Fatalf("bad op: %v", err)
	}
	// An op that edits the spec out from under a registered tenant fails
	// at synthesis, not at the spec layer.
	_, err = c.PatchSpec(ctx, []SpecOpInfo{{Op: "remove", Tenant: "deadline"}})
	if !errors.As(err, &ae) || ae.Code != CodeSynthFailed {
		t.Fatalf("uncovering remove: %v", err)
	}
	if got, _ := c.Spec(ctx); got != "web*2 >> deadline" {
		t.Fatalf("failed patches changed the spec: %q", got)
	}
	// Conditional patch: a stale precondition reports the live version.
	_, err = c.PatchSpecIfMatch(ctx, []SpecOpInfo{
		{Op: "set_weight", Tenant: "web", Weight: 3},
	}, before)
	if !errors.As(err, &ae) || ae.Code != CodeVersionConflict {
		t.Fatalf("stale patch: %v", err)
	}
	if ae.CurrentVersion != ctl.Version() {
		t.Fatalf("current_version = %d, want %d", ae.CurrentVersion, ctl.Version())
	}
}

func TestTenantETagFlow(t *testing.T) {
	c, ctl, ts := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()

	ti, etag, err := c.Tenant(ctx, "web")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Name != "web" || ti.ID != 1 || ti.Algorithm != "pfabric" {
		t.Fatalf("tenant = %+v", ti)
	}
	if !strings.HasPrefix(etag, "t-") {
		t.Fatalf("etag = %q, want t-<hex>", etag)
	}

	// Conditional GET: a matching If-None-Match saves the body.
	req := mustReq(t, http.MethodGet, ts.URL+"/v1/tenants/web")
	req.Header.Set("If-None-Match", `"`+etag+`"`)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status = %d, want 304", resp.StatusCode)
	}

	// A stale content ETag refuses the write and names the live tag.
	var ae *APIError
	_, _, err = c.PutTenant(ctx, TenantInfo{Name: "web", Algorithm: "pfabric",
		Bounds: &BoundsInfo{Lo: 0, Hi: 9000}}, "t-0000000000000000")
	if !errors.As(err, &ae) || ae.Code != CodeVersionConflict {
		t.Fatalf("stale put: %v", err)
	}
	if !strings.Contains(ae.Message, etag) {
		t.Fatalf("conflict message %q does not name live etag %s", ae.Message, etag)
	}

	// A matching tag updates in place; the omitted ID keeps the registered
	// label and the recompile bumps the spec version.
	before := ctl.Version()
	out, newTag, err := c.PutTenant(ctx, TenantInfo{Name: "web", Algorithm: "pfabric",
		Bounds: &BoundsInfo{Lo: 0, Hi: 9000}}, etag)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 1 {
		t.Fatalf("omitted id re-labeled the tenant: %d", out.ID)
	}
	if newTag == etag || !strings.HasPrefix(newTag, "t-") {
		t.Fatalf("new etag = %q (old %q)", newTag, etag)
	}
	if ctl.Version() != before+1 {
		t.Fatalf("version = %d, want %d", ctl.Version(), before+1)
	}
	if tn, _ := ctl.Tenant("web"); tn.Bounds.Hi != 9000 {
		t.Fatalf("bounds not applied: %+v", tn.Bounds)
	}

	if _, _, err := c.Tenant(ctx, "nope"); !errors.As(err, &ae) || ae.Code != CodeUnknownTenant {
		t.Fatalf("unknown tenant: %v", err)
	}
}

func TestEpochsEndpoint(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()

	g, err := c.Epochs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if g.Current == nil || g.Current.Gen != ctl.Version() {
		t.Fatalf("current = %+v, want gen %d", g.Current, ctl.Version())
	}
	if g.Published != 1 || len(g.Draining) != 0 {
		t.Fatalf("generations = %+v", g)
	}
	// With no data plane attached nothing pins the old epoch, so each
	// mutation supersedes cleanly: publish count and generation follow the
	// spec version.
	if err := c.SetSpec(ctx, "web + deadline"); err != nil {
		t.Fatal(err)
	}
	if g, err = c.Epochs(ctx); err != nil {
		t.Fatal(err)
	}
	if g.Published != 2 || g.Current.Gen != ctl.Version() {
		t.Fatalf("after update: %+v (version %d)", g, ctl.Version())
	}
}

func TestDeprecatedRouteHeaders(t *testing.T) {
	c, _, ts := newTestServer(t, core.ControllerOptions{})
	_ = c

	assertDeprecated := func(t *testing.T, resp *http.Response, want bool) {
		t.Helper()
		if got := resp.Header.Get("Deprecation") == "true"; got != want {
			t.Errorf("Deprecation header = %v, want %v", got, want)
		}
		link := resp.Header.Get("Link")
		if want && !strings.Contains(link, "/v1/tenants:batch") {
			t.Errorf("Link = %q, want successor /v1/tenants:batch", link)
		}
	}

	// The legacy one-tenant mutations still work but advertise the bulk
	// successor on every reply, success or failure.
	body := `{"tenant":{"name":"extra","id":3,"algorithm":"fq"},"spec":"web >> deadline >> extra"}`
	resp, err := ts.Client().Post(ts.URL+"/v1/tenants", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("join status = %d", resp.StatusCode)
	}
	assertDeprecated(t, resp, true)

	req := mustReq(t, http.MethodDelete, ts.URL+"/v1/tenants/extra?spec=web+%3E%3E+deadline")
	if resp, err = ts.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("leave status = %d", resp.StatusCode)
	}
	assertDeprecated(t, resp, true)

	// The successor route carries no deprecation marker.
	resp, err = ts.Client().Post(ts.URL+"/v1/tenants:batch", "application/json",
		bytes.NewReader([]byte(`{"ops":[{"op":"leave","name":"deadline"}],"spec":"web"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	assertDeprecated(t, resp, false)
}

func TestPutSpecEpochAndConflictBody(t *testing.T) {
	c, ctl, ts := newTestServer(t, core.ControllerOptions{})
	ctx := context.Background()

	// Success body now carries the deployed epoch alongside the version.
	sv, err := c.SetSpecIfMatch(ctx, "web + deadline", ctl.Version())
	if err != nil {
		t.Fatal(err)
	}
	if sv.Version != ctl.Version() || sv.Epoch != sv.Version {
		t.Fatalf("SetSpecIfMatch = %+v (version %d)", sv, ctl.Version())
	}

	// The conflict envelope reports the version to retry against, both in
	// the body and the ETag header.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/spec",
		strings.NewReader(`{"spec":"web >> deadline"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-Match", `"999"`)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	var er ErrorResponse
	if err := jsonDecode(resp, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeVersionConflict {
		t.Fatalf("code = %q", er.Error.Code)
	}
	if er.Error.CurrentVersion != ctl.Version() {
		t.Fatalf("current_version = %d, want %d", er.Error.CurrentVersion, ctl.Version())
	}
	if got := strings.Trim(resp.Header.Get("ETag"), `"`); got == "" || got == "999" {
		t.Fatalf("conflict ETag = %q", got)
	}
}
