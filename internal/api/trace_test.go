package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sim"
	"qvisor/internal/trace"
)

// newTraceServer is newTestServer with a populated flight recorder
// attached: a two-packet lifecycle for tenant 1 and an admission drop
// for tenant 2.
func newTraceServer(t *testing.T) (*Client, *trace.Recorder) {
	t.Helper()
	tenants := []*core.Tenant{
		{ID: 1, Name: "web", Algorithm: &rank.PFabric{}},
		{ID: 2, Name: "deadline", Algorithm: &rank.EDF{}},
	}
	ctl, _, err := core.NewController(tenants, policy.MustParse("web >> deadline"), core.ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl, func() sim.Time { return 0 })
	rec := trace.NewFlightRecorder(trace.Options{RingSize: 32})
	p1 := &pkt.Packet{ID: 1, Flow: 10, Tenant: 1, Rank: 7, Size: 1500}
	rec.Record(1000, trace.KindEmit, "host0", p1)
	rec.Record(2000, trace.KindEnqueue, "host0→leaf0", p1)
	rec.Record(3000, trace.KindDequeue, "host0→leaf0", p1)
	rec.Record(4000, trace.KindDeliver, "host1", p1)
	p2 := &pkt.Packet{ID: 2, Flow: 20, Tenant: 2, Rank: 90, Size: 400}
	rec.Record(1500, trace.KindEmit, "host2", p2)
	rec.RecordDrop(2500, "leaf0", p2, "admission")
	srv.AttachTrace(rec)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), rec
}

// TestTraceEndpoint: GET /v1/trace must return exactly the recorder's
// ring snapshot — same events, same order, same sequence number — and
// honor the tenant/kind/limit query filters.
func TestTraceEndpoint(t *testing.T) {
	c, rec := newTraceServer(t)
	ctx := context.Background()

	got, err := c.Trace(ctx, AllTrace)
	if err != nil {
		t.Fatal(err)
	}
	want, seq := rec.Snapshot(trace.AllEvents)
	if got.Seq != seq {
		t.Fatalf("seq = %d, want %d", got.Seq, seq)
	}
	if !reflect.DeepEqual(got.Events, want) {
		t.Fatalf("endpoint diverges from ring snapshot:\ngot  %+v\nwant %+v", got.Events, want)
	}

	byTenant, err := c.Trace(ctx, TraceFilter{Tenant: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(byTenant.Events) != 2 || byTenant.Events[1].Cause != "admission" {
		t.Fatalf("tenant filter: %+v", byTenant.Events)
	}
	byKind, err := c.Trace(ctx, TraceFilter{Tenant: -1, Kinds: []string{trace.KindDrop}, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(byKind.Events) != 1 || byKind.Events[0].Kind != trace.KindDrop {
		t.Fatalf("kind+limit filter: %+v", byKind.Events)
	}
}

// TestTraceETag: the response ETag is the recorder's sequence number and
// If-None-Match on an unchanged ring yields 304 with no body; recording
// another event invalidates it.
func TestTraceETag(t *testing.T) {
	c, rec := newTraceServer(t)
	resp, err := c.hc.Get(c.base + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag != `"6"` {
		t.Fatalf("ETag = %q, want \"6\"", etag)
	}

	get := func(inm string) int {
		req, _ := http.NewRequest(http.MethodGet, c.base+"/v1/trace", nil)
		req.Header.Set("If-None-Match", inm)
		r2, err := c.hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		return r2.StatusCode
	}
	if code := get(etag); code != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: %d, want 304", code)
	}
	rec.Record(5000, trace.KindEmit, "host0", &pkt.Packet{ID: 3, Flow: 10, Tenant: 1})
	if code := get(etag); code != http.StatusOK {
		t.Fatalf("stale If-None-Match after new event: %d, want 200", code)
	}
}

// TestTraceValidation: bad query parameters are 400s, and a server
// without a recorder answers 404 so clients can distinguish "tracing
// off" from "ring empty".
func TestTraceValidation(t *testing.T) {
	c, _ := newTraceServer(t)
	for _, q := range []string{"?tenant=x", "?tenant=-3", "?limit=x", "?limit=-1"} {
		resp, err := c.hc.Get(c.base + "/v1/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", q, resp.StatusCode)
		}
	}

	plain, _, _ := newTestServer(t, core.ControllerOptions{})
	_, err := plain.Trace(context.Background(), AllTrace)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeNotFound {
		t.Fatalf("recorderless trace: %v, want %s", err, CodeNotFound)
	}
}
