package api

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
)

// TestConcurrentMutations hammers the bulk surface — tenants:batch and
// PATCH /v1/spec — from several writers while data-plane readers pin and
// process packets against the epoch store the whole time, the way
// netsim's switches do. Every reader asserts the epoch it acquired is
// internally consistent (policy, deployment, and transform table all
// from one generation — no torn deployment), and the final store state
// shows every pin released. Run with -race in CI.
func TestConcurrentMutations(t *testing.T) {
	c, ctl, _ := newTestServer(t, core.ControllerOptions{
		EpochDeploy: &core.EpochDeploy{Backend: core.BackendSPQueues},
	})
	ctx := context.Background()
	es := ctl.Epochs()

	const readers = 4
	const writers = 4
	const iters = 25

	done := make(chan struct{})
	var processed atomic.Int64
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			lastGen := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				e := es.Acquire()
				if e == nil {
					t.Error("acquired nil epoch with a policy published")
					return
				}
				// Torn-deployment checks: everything hanging off the epoch
				// belongs to the generation we pinned.
				if e.Policy == nil || e.Deployment == nil {
					t.Errorf("gen %d: policy=%v deployment=%v", e.Gen, e.Policy, e.Deployment)
					es.Release(e.Gen)
					return
				}
				if e.Gen < lastGen {
					t.Errorf("generation went backwards: %d after %d", e.Gen, lastGen)
				}
				lastGen = e.Gen
				for name, id := range e.Policy.ByName {
					if _, ok := e.Policy.Transforms[id]; !ok {
						t.Errorf("gen %d: tenant %s (id %d) has no transform", e.Gen, name, id)
					}
				}
				p := &pkt.Packet{Tenant: 1, Rank: int64(i % 100)}
				e.Process(p)
				if p.Rank < e.Policy.Output.Lo || p.Rank > e.Policy.Output.Hi {
					t.Errorf("gen %d: rank %d outside output [%d,%d]",
						e.Gen, p.Rank, e.Policy.Output.Lo, e.Policy.Output.Hi)
				}
				processed.Add(1)
				es.Release(e.Gen)
				// Busy readers must not starve the writers' HTTP round
				// trips on small GOMAXPROCS.
				runtime.Gosched()
			}
		}(r)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%2 == 0 {
					// Net-zero batch: the tenant universe ends unchanged, so
					// concurrent writers never invalidate each other's spec.
					name := fmt.Sprintf("w%dt%d", w, i)
					id := pkt.TenantID(100 + w*200 + i)
					_, err := c.Batch(ctx, BatchRequest{Ops: []BatchOpInfo{
						{Op: "join", Tenant: &TenantInfo{Name: name, ID: id, Algorithm: "fq"}},
						{Op: "leave", Name: name},
					}})
					if err != nil {
						t.Errorf("writer %d batch %d: %v", w, i, err)
						return
					}
					continue
				}
				// Optimistic-concurrency patch: read the version, set a
				// weight conditionally, retry on conflict with the version
				// the envelope reports.
				sv, err := c.SpecVersion(ctx)
				if err != nil {
					t.Errorf("writer %d version read: %v", w, err)
					return
				}
				version := sv.Version
				for try := 0; ; try++ {
					_, err := c.PatchSpecIfMatch(ctx, []SpecOpInfo{
						{Op: "set_weight", Tenant: "web", Weight: int64(1 + (w+i)%3)},
					}, version)
					if err == nil {
						break
					}
					var ae *APIError
					if !errors.As(err, &ae) || ae.Code != CodeVersionConflict || try > 8*writers*iters {
						t.Errorf("writer %d patch %d: %v", w, i, err)
						return
					}
					version = ae.CurrentVersion
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	rg.Wait()

	if processed.Load() == 0 {
		t.Fatal("readers never processed a packet")
	}
	if d := es.Draining(); d != 0 {
		t.Errorf("draining = %d after all releases, want 0", d)
	}
	g := es.Generations()
	if g.Current == nil || g.Current.Gen != ctl.Version() {
		t.Errorf("current = %+v, want gen %d", g.Current, ctl.Version())
	}
	if g.Current != nil && g.Current.Inflight != 0 {
		t.Errorf("current inflight = %d, want 0", g.Current.Inflight)
	}
	// Every accepted mutation compiled into exactly one published epoch.
	if g.Published != ctl.Version() {
		t.Errorf("published = %d, version = %d", g.Published, ctl.Version())
	}
}
