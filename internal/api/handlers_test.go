package api

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"qvisor/internal/core"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestErrorEnvelope sweeps every /v1 route's failure modes and asserts the
// uniform error envelope: JSON content type, a machine-readable code, and a
// non-empty message.
func TestErrorEnvelope(t *testing.T) {
	c, _, ts := newTestServerRaw(t)
	_ = c
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		ifMatch    string
		wantStatus int
		wantCode   string
	}{
		{"unknown route", http.MethodGet, "/v1/nope", "", "", 404, CodeNotFound},
		{"wrong method policy", http.MethodPost, "/v1/policy", "", "", 405, CodeMethodNotAllowed},
		{"wrong method spec", http.MethodDelete, "/v1/spec", "", "", 405, CodeMethodNotAllowed},
		{"wrong method tenants", http.MethodPut, "/v1/tenants", "", "", 405, CodeMethodNotAllowed},
		{"wrong method check", http.MethodGet, "/v1/check", "", "", 405, CodeMethodNotAllowed},
		{"wrong method metrics", http.MethodPost, "/v1/metrics", "", "", 405, CodeMethodNotAllowed},
		{"malformed join", http.MethodPost, "/v1/tenants", "{not json", "", 400, CodeParseError},
		{"malformed spec", http.MethodPut, "/v1/spec", "{not json", "", 400, CodeParseError},
		{"malformed compile", http.MethodPost, "/v1/compile", "{not json", "", 400, CodeParseError},
		{"malformed fabric", http.MethodPost, "/v1/fabric", "{not json", "", 400, CodeParseError},
		{"unknown field", http.MethodPut, "/v1/spec", `{"spec":"web >> deadline","bogus":1}`, "", 400, CodeParseError},
		{"bad spec text", http.MethodPut, "/v1/spec", `{"spec":">>"}`, "", 400, CodeParseError},
		{"spec missing tenant", http.MethodPut, "/v1/spec", `{"spec":"web"}`, "", 409, CodeSynthFailed},
		{"unknown tenant monitor", http.MethodGet, "/v1/tenants/ghost/monitor", "", "", 404, CodeUnknownTenant},
		{"unknown tenant leave", http.MethodDelete,
			"/v1/tenants/ghost?spec=" + url.QueryEscape("web >> deadline"), "", "", 404, CodeUnknownTenant},
		{"leave missing spec", http.MethodDelete, "/v1/tenants/web", "", "", 400, CodeBadRequest},
		{"duplicate join", http.MethodPost, "/v1/tenants",
			`{"tenant":{"name":"web","id":7,"algorithm":"fq"},"spec":"web >> deadline"}`, "", 409, CodeTenantExists},
		{"unknown ranker", http.MethodPost, "/v1/tenants",
			`{"tenant":{"name":"z","id":9,"algorithm":"nope"},"spec":"web >> deadline >> z"}`, "", 400, CodeBadRequest},
		{"invalid compile target", http.MethodPost, "/v1/compile", `{"name":"none"}`, "", 400, CodeInvalidTarget},
		{"malformed if-match", http.MethodPut, "/v1/spec", `{"spec":"web + deadline"}`, "abc", 400, CodeBadRequest},
		{"stale if-match", http.MethodPut, "/v1/spec", `{"spec":"web + deadline"}`, "99", 409, CodeVersionConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			if tc.ifMatch != "" {
				req.Header.Set("If-Match", tc.ifMatch)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var er ErrorResponse
			if err := jsonDecode(resp, &er); err != nil {
				t.Fatalf("decode envelope: %v", err)
			}
			if er.Error.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q (message %q)", er.Error.Code, tc.wantCode, er.Error.Message)
			}
			if er.Error.Message == "" {
				t.Fatal("envelope message empty")
			}
		})
	}
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestIfMatchFlow exercises the optimistic-concurrency loop end to end:
// read the version, mutate conditionally, observe a conflict when the
// precondition went stale.
func TestIfMatchFlow(t *testing.T) {
	c, ctl, ts := newTestServerRaw(t)
	ctx := context.Background()

	sv, err := c.SpecVersion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Spec != "web >> deadline" || sv.Version != 1 {
		t.Fatalf("SpecVersion = %+v", sv)
	}

	// The version travels as an ETag too.
	resp, err := http.Get(ts.URL + "/v1/spec")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if et := resp.Header.Get("ETag"); et != `"1"` {
		t.Fatalf("ETag = %q, want %q", et, `"1"`)
	}

	// Conditional update at the current version succeeds and bumps it.
	sv2, err := c.SetSpecIfMatch(ctx, "web + deadline", sv.Version)
	if err != nil {
		t.Fatal(err)
	}
	if sv2.Version != sv.Version+1 || sv2.Spec != "web + deadline" {
		t.Fatalf("after conditional update: %+v", sv2)
	}

	// Replaying the old version is a conflict and must not mutate.
	_, err = c.SetSpecIfMatch(ctx, "web >> deadline", sv.Version)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusConflict || ae.Code != CodeVersionConflict {
		t.Fatalf("stale update err = %v, want 409 %s", err, CodeVersionConflict)
	}
	if got := ctl.Spec().String(); got != "web + deadline" {
		t.Fatalf("stale update mutated spec: %q", got)
	}

	// "*" matches any version.
	req2, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/spec", strings.NewReader(`{"spec":"web >> deadline"}`))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("If-Match", "*")
	req2.Header.Set("Content-Type", "application/json")
	wresp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf(`If-Match "*" status = %d`, wresp.StatusCode)
	}

	// Join/Leave honor the precondition too.
	cur := ctl.Version()
	if err := c.JoinIfMatch(ctx, TenantInfo{Name: "batch", ID: 3, Algorithm: "fq"},
		"web >> deadline + batch", cur); err != nil {
		t.Fatal(err)
	}
	err = c.LeaveIfMatch(ctx, "batch", "web >> deadline", cur)
	if !errors.As(err, &ae) || ae.Code != CodeVersionConflict {
		t.Fatalf("stale leave err = %v, want %s", err, CodeVersionConflict)
	}
	if err := c.LeaveIfMatch(ctx, "batch", "web >> deadline", ctl.Version()); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsDisabled: a controller built without a registry has no metrics
// endpoint to serve.
func TestMetricsDisabled(t *testing.T) {
	c, _, _ := newTestServerRaw(t)
	_, err := c.Metrics(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || ae.Code != CodeNotFound {
		t.Fatalf("metrics without registry: err = %v, want 404 %s", err, CodeNotFound)
	}
}

// TestMetricsGolden drives deterministic traffic through an instrumented
// controller and compares GET /v1/metrics byte-for-byte against the checked
// in exposition (regenerate with `go test -run TestMetricsGolden -update`).
func TestMetricsGolden(t *testing.T) {
	reg := obs.NewRegistry()
	tenants := []*core.Tenant{
		{ID: 1, Name: "web", Algorithm: &rank.PFabric{}},
		{ID: 2, Name: "deadline", Algorithm: &rank.EDF{}},
	}
	ctl, pp, err := core.NewController(tenants, policy.MustParse("web >> deadline"),
		core.ControllerOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic traffic: ten web packets (one clamped below its
	// declared bounds), five deadline packets, three unknown-tenant packets.
	for i := 0; i < 10; i++ {
		r := int64(i * 1000)
		if i == 0 {
			r = -5
		}
		pp.Process(&pkt.Packet{Tenant: 1, Rank: r})
	}
	for i := 0; i < 5; i++ {
		pp.Process(&pkt.Packet{Tenant: 2, Rank: int64(i)})
	}
	for i := 0; i < 3; i++ {
		pp.Process(&pkt.Packet{Tenant: 9, Rank: 1})
	}

	var now sim.Time
	srv := NewServer(ctl, func() sim.Time { now += sim.Millisecond; return now })
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())

	got, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from %s (re-run with -update if intended):\n--- got ---\n%s", golden, got)
	}

	// The content type is the Prometheus text exposition.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ExpositionContentType)
	}
}

// TestMetricsLateRegistrationGolden pins the exposition's ordering
// contract for metrics registered AFTER the first scrape: families that
// appear late (here the shard coordinator's qvisor_sim_* telemetry,
// which only exists once a sharded run flushes) must slot into the
// sorted family list with their HELP/TYPE lines, and repeated scrapes
// of the unchanged registry must be byte-identical. Regenerate with
// `go test -run TestMetricsLateRegistrationGolden -update`.
func TestMetricsLateRegistrationGolden(t *testing.T) {
	reg := obs.NewRegistry()
	tenants := []*core.Tenant{
		{ID: 1, Name: "web", Algorithm: &rank.PFabric{}},
		{ID: 2, Name: "deadline", Algorithm: &rank.EDF{}},
	}
	ctl, pp, err := core.NewController(tenants, policy.MustParse("web >> deadline"),
		core.ControllerOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		pp.Process(&pkt.Packet{Tenant: 1, Rank: int64(i * 100)})
	}

	var now sim.Time
	srv := NewServer(ctl, func() sim.Time { now += sim.Millisecond; return now })
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	early, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(early, "qvisor_sim_") {
		t.Fatal("sim telemetry present before any flush — test premise broken")
	}

	// Late registration: a sharded run's coordinator stats flush into the
	// live registry mid-flight (satellite: sim.CoordStats -> obs).
	st := sim.CoordStats{Windows: 7, Messages: 42, MaxChanLen: 3,
		BarrierWait: []time.Duration{time.Microsecond, 2 * time.Microsecond}}
	st.Export(reg, sim.CoordStats{})
	// Second flush exports deltas only: counters must not double.
	st.Export(reg, st)

	got, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != again {
		t.Fatal("back-to-back scrapes of an unchanged registry differ")
	}
	// Families must read sorted even though qvisor_sim_* registered last.
	var fams []string
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(fams) {
		t.Fatalf("families not sorted after late registration: %v", fams)
	}
	for _, want := range []string{
		"qvisor_sim_windows_total 7",
		"qvisor_sim_messages_total 42",
		"qvisor_sim_chan_highwater 3",
		`qvisor_sim_barrier_wait_ns_total{shard="0"} 1000`,
		`qvisor_sim_barrier_wait_ns_total{shard="1"} 2000`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	golden := filepath.Join("testdata", "metrics_late.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("late-registration exposition drifted from %s (re-run with -update if intended):\n--- got ---\n%s", golden, got)
	}
}

// TestMetricsFamilies asserts the metric families the ISSUE requires are
// present with their tenant labels after real controller activity.
func TestMetricsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	c, ctl, _ := newTestServer(t, core.ControllerOptions{
		Metrics:         reg,
		MinObservations: 10,
		WindowSize:      64,
	})
	ctx := context.Background()
	// Trigger a drift re-synthesis so controller counters move.
	for i := 0; i < 64; i++ {
		ctl.Observe(1, 1<<40)
	}
	if _, err := c.Check(ctx); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v := ctl.Version()
	for _, want := range []string{
		`qvisor_preproc_processed_total{tenant="web"}`,
		`qvisor_preproc_processed_total{tenant="deadline"}`,
		"qvisor_preproc_unknown_total",
		"qvisor_preproc_rank_shift_bucket",
		fmt.Sprintf("qvisor_controller_resyntheses_total %d", v),
		`qvisor_controller_events_total{kind="resynthesized"}`,
		fmt.Sprintf("qvisor_controller_policy_version %d", v),
		"qvisor_controller_tenants 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, text)
		}
	}
}
