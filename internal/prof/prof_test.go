package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile isn't degenerate.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartEmptyPathsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
