// Package prof wires the standard runtime/pprof profilers into the
// command-line binaries. Both qvisor-eval and qvisor-sim expose
// -cpuprofile and -memprofile flags backed by Start; the written files
// load directly into `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function must be called exactly
// once, after the workload of interest has run; it forces a GC first so
// the heap profile reflects live objects rather than collectable
// garbage. Either path may be empty to skip that profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize a current live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
