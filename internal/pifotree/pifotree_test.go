package pifotree

import (
	"math/rand"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

func classifyByTenant(names map[pkt.TenantID]string) Classifier {
	return func(p *pkt.Packet) string { return names[p.Tenant] }
}

func TestSingleLeafFIFO(t *testing.T) {
	tr := NewTree(sched.Config{}, FIFOTransaction, func(*pkt.Packet) string { return "a" })
	if err := tr.AddLeaf("root", "a", FIFOTransaction); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if !tr.Enqueue(&pkt.Packet{ID: i, Size: 10}) {
			t.Fatal("enqueue failed")
		}
	}
	for i := uint64(1); i <= 5; i++ {
		p := tr.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("FIFO order broken: got %v, want %d", p, i)
		}
	}
	if tr.Dequeue() != nil {
		t.Fatal("empty tree should return nil")
	}
}

func TestLeafRanking(t *testing.T) {
	// One leaf ranking by packet rank: behaves like a plain PIFO.
	tr := NewTree(sched.Config{}, FIFOTransaction, func(*pkt.Packet) string { return "a" })
	if err := tr.AddLeaf("root", "a", func(p *pkt.Packet) int64 { return p.Rank }); err != nil {
		t.Fatal(err)
	}
	for _, r := range []int64{5, 1, 9, 3} {
		tr.Enqueue(&pkt.Packet{Rank: r, Size: 1})
	}
	want := []int64{1, 3, 5, 9}
	for _, w := range want {
		if got := tr.Dequeue().Rank; got != w {
			t.Fatalf("rank order: got %d, want %d", got, w)
		}
	}
}

func TestStrictPriorityBetweenLeaves(t *testing.T) {
	// Root ranks children by tenant priority: tenant 1 strictly first.
	names := map[pkt.TenantID]string{1: "hi", 2: "lo"}
	tr := NewTree(sched.Config{}, func(p *pkt.Packet) int64 { return int64(p.Tenant) },
		classifyByTenant(names))
	if err := tr.AddLeaf("root", "hi", FIFOTransaction); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddLeaf("root", "lo", FIFOTransaction); err != nil {
		t.Fatal(err)
	}
	tr.Enqueue(&pkt.Packet{ID: 1, Tenant: 2, Size: 1})
	tr.Enqueue(&pkt.Packet{ID: 2, Tenant: 1, Size: 1})
	tr.Enqueue(&pkt.Packet{ID: 3, Tenant: 2, Size: 1})
	tr.Enqueue(&pkt.Packet{ID: 4, Tenant: 1, Size: 1})
	var tenants []pkt.TenantID
	for p := tr.Dequeue(); p != nil; p = tr.Dequeue() {
		tenants = append(tenants, p.Tenant)
	}
	want := []pkt.TenantID{1, 1, 2, 2}
	for i := range want {
		if tenants[i] != want[i] {
			t.Fatalf("priority order %v, want %v", tenants, want)
		}
	}
}

func TestHPFQGroupFairness(t *testing.T) {
	// Group A has 4 flows, group B has 1: HPFQ must still serve the two
	// groups ~equally (per-group fairness, not per-flow).
	names := map[pkt.TenantID]string{1: "A", 2: "B"}
	tr, err := NewHPFQ(sched.Config{CapacityBytes: 1 << 30}, []string{"A", "B"},
		classifyByTenant(names))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Backlog: 400 packets from A's 4 flows, 100 from B's single flow.
	for i := 0; i < 400; i++ {
		tr.Enqueue(&pkt.Packet{Tenant: 1, Flow: uint64(1 + rng.Intn(4)), Size: 100})
	}
	for i := 0; i < 100; i++ {
		tr.Enqueue(&pkt.Packet{Tenant: 2, Flow: 99, Size: 100})
	}
	// Dequeue the first 160 packets: groups should alternate ~evenly.
	counts := map[pkt.TenantID]int{}
	for i := 0; i < 160; i++ {
		p := tr.Dequeue()
		counts[p.Tenant]++
	}
	if counts[2] < 60 || counts[2] > 100 {
		t.Fatalf("group shares skewed: %v (want ~80/80)", counts)
	}
}

func TestHPFQWithinGroupFairness(t *testing.T) {
	names := map[pkt.TenantID]string{1: "A"}
	tr, err := NewHPFQ(sched.Config{CapacityBytes: 1 << 30}, []string{"A"},
		classifyByTenant(names))
	if err != nil {
		t.Fatal(err)
	}
	// Two flows, one with double backlog: equal service among the first
	// dequeues.
	for i := 0; i < 100; i++ {
		tr.Enqueue(&pkt.Packet{Tenant: 1, Flow: 1, Size: 100})
		tr.Enqueue(&pkt.Packet{Tenant: 1, Flow: 1, Size: 100})
		tr.Enqueue(&pkt.Packet{Tenant: 1, Flow: 2, Size: 100})
	}
	counts := map[uint64]int{}
	for i := 0; i < 100; i++ {
		counts[tr.Dequeue().Flow]++
	}
	if counts[2] < 40 {
		t.Fatalf("flow shares skewed: %v (want ~50/50)", counts)
	}
}

func TestFairTxNewKeyJoinsAtVirtualTime(t *testing.T) {
	tx, hook := FairTx(func(p *pkt.Packet) uint64 { return p.Flow }, nil)
	// Key 1 accumulates service.
	var last int64
	for i := 0; i < 10; i++ {
		last = tx(&pkt.Packet{Flow: 1, Size: 100})
		hook(last)
	}
	// A new key starts at the current virtual time, not at zero.
	if start := tx(&pkt.Packet{Flow: 2, Size: 100}); start < last {
		t.Fatalf("new key backdated: start %d < vtime %d", start, last)
	}
}

func TestFairTxWeights(t *testing.T) {
	tx, _ := FairTx(func(p *pkt.Packet) uint64 { return p.Flow },
		func(p *pkt.Packet) float64 {
			if p.Flow == 1 {
				return 2
			}
			return 1
		})
	tx(&pkt.Packet{Flow: 1, Size: 100}) // finish[1] = 50
	tx(&pkt.Packet{Flow: 2, Size: 100}) // finish[2] = 100
	a := tx(&pkt.Packet{Flow: 1, Size: 100})
	b := tx(&pkt.Packet{Flow: 2, Size: 100})
	if a != 50 || b != 100 {
		t.Fatalf("weighted starts = %d,%d want 50,100", a, b)
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	// root → {prod, dev}; prod → {web, db} leaves; dev → {ci} leaf.
	// Root is strict (prod=0 before dev=1); within prod, web before db.
	classify := func(p *pkt.Packet) string {
		switch p.Tenant {
		case 1:
			return "web"
		case 2:
			return "db"
		default:
			return "ci"
		}
	}
	prodFirst := func(p *pkt.Packet) int64 {
		if p.Tenant <= 2 {
			return 0
		}
		return 1
	}
	tr := NewTree(sched.Config{}, prodFirst, classify)
	if err := tr.AddInterior("root", "prod", func(p *pkt.Packet) int64 { return int64(p.Tenant) }); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddInterior("root", "dev", FIFOTransaction); err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []struct{ parent, name string }{
		{"prod", "web"}, {"prod", "db"}, {"dev", "ci"},
	} {
		if err := tr.AddLeaf(leaf.parent, leaf.name, FIFOTransaction); err != nil {
			t.Fatal(err)
		}
	}
	tr.Enqueue(&pkt.Packet{ID: 1, Tenant: 3, Size: 1}) // ci
	tr.Enqueue(&pkt.Packet{ID: 2, Tenant: 2, Size: 1}) // db
	tr.Enqueue(&pkt.Packet{ID: 3, Tenant: 1, Size: 1}) // web
	var order []uint64
	for p := tr.Dequeue(); p != nil; p = tr.Dequeue() {
		order = append(order, p.ID)
	}
	want := []uint64{3, 2, 1} // web, db, ci
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hierarchy order %v, want %v", order, want)
		}
	}
}

func TestTreeBuildErrors(t *testing.T) {
	tr := NewTree(sched.Config{}, nil, nil)
	if err := tr.AddLeaf("ghost", "a", nil); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if err := tr.AddLeaf("root", "a", nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddLeaf("root", "a", nil); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := tr.AddLeaf("a", "b", nil); err == nil {
		t.Fatal("leaf parent accepted")
	}
	if err := tr.SetPopHook("ghost", func(int64) {}); err == nil {
		t.Fatal("hook on unknown node accepted")
	}
}

func TestUnknownLeafDrops(t *testing.T) {
	drops := 0
	tr := NewTree(sched.Config{OnDrop: func(*pkt.Packet, sched.DropCause) { drops++ }}, nil,
		func(*pkt.Packet) string { return "nowhere" })
	if tr.Enqueue(&pkt.Packet{Size: 1}) {
		t.Fatal("packet to unknown leaf accepted")
	}
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestCapacityDrop(t *testing.T) {
	tr := NewTree(sched.Config{CapacityBytes: 100}, nil, func(*pkt.Packet) string { return "a" })
	tr.AddLeaf("root", "a", nil)
	if !tr.Enqueue(&pkt.Packet{Size: 100}) {
		t.Fatal("within capacity rejected")
	}
	if tr.Enqueue(&pkt.Packet{Size: 1}) {
		t.Fatal("over capacity accepted")
	}
}

func TestSchedulerConformance(t *testing.T) {
	// The tree satisfies the sched.Scheduler contract: conservation and
	// byte accounting.
	var s sched.Scheduler = mustHPFQ(t)
	rng := rand.New(rand.NewSource(3))
	sent, recv, drops := 0, 0, 0
	tr := s.(*Tree)
	tr.cfg.OnDrop = func(*pkt.Packet, sched.DropCause) { drops++ }
	tr.cfg.CapacityBytes = 500
	for i := 0; i < 300; i++ {
		tenant := pkt.TenantID(1 + rng.Intn(2))
		s.Enqueue(&pkt.Packet{Tenant: tenant, Flow: uint64(rng.Intn(4)), Size: 10})
		sent++
		if rng.Intn(3) == 0 && s.Dequeue() != nil {
			recv++
		}
	}
	for s.Dequeue() != nil {
		recv++
	}
	if sent != recv+drops {
		t.Fatalf("conservation: sent=%d recv=%d drops=%d", sent, recv, drops)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("drained tree non-empty: len=%d bytes=%d", s.Len(), s.Bytes())
	}
	if s.Name() != "pifotree" {
		t.Fatalf("name = %q", s.Name())
	}
}

func mustHPFQ(t *testing.T) *Tree {
	t.Helper()
	names := map[pkt.TenantID]string{1: "A", 2: "B"}
	tr, err := NewHPFQ(sched.Config{}, []string{"A", "B"}, classifyByTenant(names))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func BenchmarkHPFQ(b *testing.B) {
	names := map[pkt.TenantID]string{1: "A", 2: "B"}
	tr, err := NewHPFQ(sched.Config{CapacityBytes: 1 << 30}, []string{"A", "B"},
		classifyByTenant(names))
	if err != nil {
		b.Fatal(err)
	}
	p := &pkt.Packet{Size: 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Tenant = pkt.TenantID(1 + i%2)
		p.Flow = uint64(i % 8)
		tr.Enqueue(p)
		if tr.Len() > 256 {
			tr.Dequeue()
		}
	}
}
