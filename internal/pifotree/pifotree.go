// Package pifotree implements the PIFO-tree abstraction of Sivaraman et
// al., "Programmable Packet Scheduling at Line Rate" (SIGCOMM 2016) —
// reference [32] of the QVISOR paper, and the §5 direction "recent research
// has proposed more complex abstractions such as PIFO trees ... with them,
// tenants can specify hierarchical and non-work-conserving scheduling
// algorithms".
//
// A PIFO tree is a tree of PIFO nodes. Every enqueue classifies the packet
// to a leaf and pushes one element into each PIFO on the root-to-leaf
// path: interior nodes hold references to their children ordered by the
// node's scheduling transaction; the leaf holds the packet itself.
// Dequeue pops the root to select a child, then that child's PIFO, and so
// on until a packet emerges. Hierarchies like HPFQ (fair queuing between
// groups, fair queuing within each group) fall out naturally.
//
// The tree implements sched.Scheduler, so it can serve as the egress
// discipline of a simulated switch port or as a tenant-internal hierarchy
// inside a QVISOR band.
package pifotree

import (
	"fmt"

	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

// Transaction computes the rank an element receives in a node's PIFO: the
// node's "scheduling transaction" in PIFO-tree terminology. For interior
// nodes the element represents the child subtree the packet descends into;
// for leaves it is the packet itself. Lower ranks dequeue first.
type Transaction func(p *pkt.Packet) int64

// FIFOTransaction ranks every element equally: arrival order.
func FIFOTransaction(*pkt.Packet) int64 { return 0 }

// Classifier maps a packet to the name of the leaf it joins.
type Classifier func(p *pkt.Packet) string

// node is one PIFO in the tree.
type node struct {
	name     string
	tx       Transaction
	onPop    func(rank int64) // virtual-time hook for fair transactions
	children map[string]*node
	h        entryHeap
	seq      uint64
}

type entry struct {
	rank  int64
	seq   uint64
	p     *pkt.Packet // leaf entries
	child *node       // interior entries
}

// entryHeap is a hand-rolled binary min-heap of value entries ordered by
// (rank, seq). The stdlib container/heap would box every entry through its
// `any` interface on push and pop — one allocation per tree level per
// packet — so the sift operations are written out directly.
type entryHeap []entry

func (h entryHeap) less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}

func (h entryHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h entryHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (n *node) push(e entry) {
	e.seq = n.seq
	n.seq++
	n.h = append(n.h, e)
	n.h.up(len(n.h) - 1)
}

func (n *node) pop() (entry, bool) {
	if len(n.h) == 0 {
		return entry{}, false
	}
	old := n.h
	last := len(old) - 1
	e := old[0]
	old[0] = old[last]
	old[last] = entry{}
	n.h = old[:last]
	if last > 0 {
		n.h.down(0)
	}
	return e, true
}

// Tree is a PIFO tree. Build one with NewTree and AddLeaf/AddInterior,
// then use it as a sched.Scheduler.
type Tree struct {
	cfg      sched.Config
	classify Classifier
	root     *node
	nodes    map[string]*node
	leaves   map[string]*node
	paths    map[string][]*node
	bytes    int
	count    int
	stats    sched.Stats
}

// NewTree returns a tree whose root orders its children with rootTx.
// classify assigns packets to leaves; packets classified to unknown leaves
// are dropped.
func NewTree(cfg sched.Config, rootTx Transaction, classify Classifier) *Tree {
	if rootTx == nil {
		rootTx = FIFOTransaction
	}
	if classify == nil {
		classify = func(*pkt.Packet) string { return "" }
	}
	root := &node{name: "root", tx: rootTx, children: make(map[string]*node)}
	return &Tree{
		cfg:      cfg,
		classify: classify,
		root:     root,
		nodes:    map[string]*node{"root": root},
		leaves:   make(map[string]*node),
		paths:    make(map[string][]*node),
	}
}

// AddInterior adds an interior node under parent, ordering its own
// children with tx. Parent must exist and not be a leaf.
func (t *Tree) AddInterior(parent, name string, tx Transaction) error {
	return t.add(parent, name, tx, false)
}

// AddLeaf adds a leaf node under parent, ordering its packets with tx.
func (t *Tree) AddLeaf(parent, name string, tx Transaction) error {
	return t.add(parent, name, tx, true)
}

func (t *Tree) add(parent, name string, tx Transaction, leaf bool) error {
	p, ok := t.nodes[parent]
	if !ok {
		return fmt.Errorf("pifotree: unknown parent %q", parent)
	}
	if _, isLeaf := t.leaves[parent]; isLeaf {
		return fmt.Errorf("pifotree: parent %q is a leaf", parent)
	}
	if _, dup := t.nodes[name]; dup {
		return fmt.Errorf("pifotree: duplicate node %q", name)
	}
	if tx == nil {
		tx = FIFOTransaction
	}
	n := &node{name: name, tx: tx, children: make(map[string]*node)}
	if !leaf {
		n.children = make(map[string]*node)
	}
	p.children[name] = n
	t.nodes[name] = n
	if leaf {
		t.leaves[name] = n
	}
	return nil
}

// path returns the root-to-leaf chain for a leaf name, cached after the
// first lookup (the topology is append-only).
func (t *Tree) path(leaf string) []*node {
	if chain, ok := t.paths[leaf]; ok {
		return chain
	}
	var chain []*node
	var walk func(n *node) bool
	walk = func(n *node) bool {
		chain = append(chain, n)
		if n.name == leaf {
			return true
		}
		for _, c := range n.children {
			if walk(c) {
				return true
			}
		}
		chain = chain[:len(chain)-1]
		return false
	}
	if !walk(t.root) {
		return nil
	}
	t.paths[leaf] = chain
	return chain
}

// Name implements sched.Scheduler.
func (t *Tree) Name() string { return "pifotree" }

// Len implements sched.Scheduler.
func (t *Tree) Len() int { return t.count }

// Bytes implements sched.Scheduler.
func (t *Tree) Bytes() int { return t.bytes }

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() sched.Stats { return t.stats }

// Enqueue implements sched.Scheduler: classify to a leaf, then push one
// element into every PIFO on the root-to-leaf path.
func (t *Tree) Enqueue(p *pkt.Packet) bool {
	cap := t.cfg.CapacityBytes
	if cap <= 0 {
		cap = sched.DefaultCapacityBytes
	}
	leafName := t.classify(p)
	leaf, ok := t.leaves[leafName]
	if !ok || t.bytes+p.Size > cap {
		t.stats.Dropped++
		if t.cfg.OnDrop != nil {
			// A packet classified to a leaf the tree does not have was
			// rejected by policy, not by buffer pressure.
			cause := sched.CauseOverflow
			if !ok {
				cause = sched.CauseAdmission
			}
			t.cfg.OnDrop(p, cause)
		}
		return false
	}
	chain := t.path(leafName)
	// Interior pushes: each node receives a reference to the next node
	// down, ranked by its own transaction.
	for i := 0; i < len(chain)-1; i++ {
		chain[i].push(entry{rank: chain[i].tx(p), child: chain[i+1]})
	}
	leaf.push(entry{rank: leaf.tx(p), p: p})
	t.bytes += p.Size
	t.count++
	t.stats.Enqueued++
	return true
}

// Dequeue implements sched.Scheduler: pop the root to choose a subtree,
// descend popping each chosen node until a packet emerges.
func (t *Tree) Dequeue() *pkt.Packet {
	n := t.root
	for {
		e, ok := n.pop()
		if !ok {
			return nil
		}
		if n.onPop != nil {
			n.onPop(e.rank)
		}
		if e.p != nil {
			t.bytes -= e.p.Size
			t.count--
			t.stats.Dequeued++
			return e.p
		}
		n = e.child
	}
}

// Reset implements sched.Scheduler: every node's PIFO is emptied (heap
// slices kept warm) and the counters zeroed. The topology and path cache
// survive. State held outside the tree — e.g. the virtual time and finish
// tags inside FairTx closures — is NOT reset; callers needing a pristine
// fair-queuing state must rebuild those transactions.
func (t *Tree) Reset() {
	for _, n := range t.nodes {
		for i := range n.h {
			n.h[i] = entry{}
		}
		n.h = n.h[:0]
		n.seq = 0
	}
	t.bytes = 0
	t.count = 0
	t.stats = sched.Stats{}
}

// SetPopHook attaches a virtual-time hook to a node: it observes the rank
// of every element popped from that node's PIFO. Fair transactions use it
// to advance their virtual time.
func (t *Tree) SetPopHook(name string, hook func(rank int64)) error {
	n, ok := t.nodes[name]
	if !ok {
		return fmt.Errorf("pifotree: unknown node %q", name)
	}
	n.onPop = hook
	return nil
}

// FairTx returns a start-time-fair-queuing transaction plus its pop hook:
// elements of the same key receive increasing start tags spaced by
// size/weight, and the hook advances the virtual time so newly active keys
// join at the current service point instead of the distant past. Attach
// the hook to the same node with SetPopHook.
func FairTx(keyOf func(*pkt.Packet) uint64, weightOf func(*pkt.Packet) float64) (Transaction, func(int64)) {
	vtime := new(int64)
	finish := make(map[uint64]int64)
	tx := func(p *pkt.Packet) int64 {
		key := keyOf(p)
		start := *vtime
		if f, ok := finish[key]; ok && f > start {
			start = f
		}
		w := 1.0
		if weightOf != nil {
			if got := weightOf(p); got > 0 {
				w = got
			}
		}
		finish[key] = start + int64(float64(p.Size)/w)
		return start
	}
	hook := func(rank int64) {
		if rank > *vtime {
			*vtime = rank
		}
	}
	return tx, hook
}

// NewHPFQ builds the classic two-level hierarchical fair-queuing tree
// (HPFQ): fair sharing between the named groups at the root, and fair
// sharing among flows within each group. groupOf maps packets to group
// names; unknown groups are dropped.
func NewHPFQ(cfg sched.Config, groups []string, groupOf func(*pkt.Packet) string) (*Tree, error) {
	rootTx, rootHook := FairTx(func(p *pkt.Packet) uint64 {
		return hashString(groupOf(p))
	}, nil)
	t := NewTree(cfg, rootTx, groupOf)
	if err := t.SetPopHook("root", rootHook); err != nil {
		return nil, err
	}
	for _, g := range groups {
		tx, hook := FairTx(func(p *pkt.Packet) uint64 { return p.Flow }, nil)
		if err := t.AddLeaf("root", g, tx); err != nil {
			return nil, err
		}
		if err := t.SetPopHook(g, hook); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func hashString(s string) uint64 {
	// FNV-1a, inlined to keep the hot path allocation-free.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
