package leaktest

import (
	"runtime"
	"testing"
	"time"
)

// fakeTB records Fatal calls instead of ending the test.
type fakeTB struct{ failed bool }

func (f *fakeTB) Helper()      {}
func (f *fakeTB) Fatal(...any) { f.failed = true }

func TestNoLeakPasses(t *testing.T) {
	check := Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check() // the goroutine above has exited (or is unwinding); settle absorbs the race
}

func TestLeakIsDetected(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	before := runtime.NumGoroutine()
	go func() { <-stop }() // stuck until the deferred close
	// Use settle directly with a tiny deadline so the failing path stays
	// fast; Check's public path uses a CI-safe 2s deadline.
	if err := settle(before, 50*time.Millisecond); err == nil {
		t.Fatal("expected the stuck goroutine to be reported")
	}
}

func TestCheckReportsThroughTB(t *testing.T) {
	var ft fakeTB
	stop := make(chan struct{})
	check := Check(&ft)
	go func() { <-stop }()
	// Swap in a fast deadline by racing the real check against a timer is
	// flaky; instead verify the wiring: with the goroutine released the
	// check must pass, leaving the fake TB clean.
	close(stop)
	check()
	if ft.failed {
		t.Fatal("check failed although the goroutine exited")
	}
}

func TestSettleDeadline(t *testing.T) {
	start := time.Now()
	// No goroutine count can be <= 0, so settle must time out — quickly.
	if err := settle(0, 30*time.Millisecond); err == nil {
		t.Fatal("expected settle to fail for impossible baseline")
	} else if time.Since(start) > time.Second {
		t.Fatalf("settle took too long: %v", time.Since(start))
	}
}
