// Package leaktest is a dependency-free goroutine-leak check for tests:
// snapshot the goroutine count before the code under test starts its
// workers, then assert the count settles back afterwards. The shard
// coordinator tests use it so a stuck shard goroutine fails the test in
// milliseconds instead of hanging CI until the job timeout.
//
// The check is count-based on purpose — parsing runtime stacks would be
// more precise but drags in fragile string matching; a count with a
// settle loop is enough to catch a worker that never exits, which is the
// failure mode that matters for the barrier-window coordinator.
package leaktest

import (
	"fmt"
	"runtime"
	"time"
)

// Check snapshots the current goroutine count and returns a function
// that verifies the count has returned to (at most) the snapshot.
// Because goroutines unwind asynchronously after their work is done, the
// returned func polls with a short backoff before declaring a leak.
//
// Usage:
//
//	defer leaktest.Check(t)()
//
// t may be any testing.TB.
func Check(t TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		if err := settle(before, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

// TB is the subset of testing.TB the checker needs, kept tiny so the
// package stays dependency-free and usable from helpers.
type TB interface {
	Helper()
	Fatal(args ...any)
}

// settle waits until the goroutine count drops to at most before,
// returning an error when it has not within the deadline.
func settle(before int, deadline time.Duration) error {
	var now int
	for wait, waited := time.Microsecond, time.Duration(0); waited < deadline; waited += wait {
		if now = runtime.NumGoroutine(); now <= before {
			return nil
		}
		time.Sleep(wait)
		if wait < 10*time.Millisecond {
			wait *= 2
		}
	}
	return fmt.Errorf("leaktest: %d goroutines still running after %v (baseline %d) — a worker is stuck",
		now, deadline, before)
}
