package policy

import (
	"fmt"
	"strconv"
)

// Parse parses an operator specification such as "T1 >> T2 > T3 + T4" into
// a validated Spec.
func Parse(input string) (*Spec, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	spec, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// MustParse is Parse, panicking on error. For tests and literals.
func MustParse(input string) *Spec {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected %v, found %v", kind, describe(t))}
	}
	return p.next(), nil
}

func describe(t token) string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// parseSpec := tier ('>>' tier)* EOF
func (p *parser) parseSpec() (*Spec, error) {
	spec := &Spec{}
	tier, err := p.parseTier()
	if err != nil {
		return nil, err
	}
	spec.Tiers = append(spec.Tiers, tier)
	for p.peek().kind == tokStrict {
		p.next()
		tier, err := p.parseTier()
		if err != nil {
			return nil, err
		}
		spec.Tiers = append(spec.Tiers, tier)
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("unexpected %v", describe(t))}
	}
	return spec, nil
}

// parseTier := level ('>' level)*
func (p *parser) parseTier() (Tier, error) {
	var tier Tier
	lvl, err := p.parseLevel()
	if err != nil {
		return tier, err
	}
	tier.Levels = append(tier.Levels, lvl)
	for p.peek().kind == tokPrefer {
		p.next()
		lvl, err := p.parseLevel()
		if err != nil {
			return tier, err
		}
		tier.Levels = append(tier.Levels, lvl)
	}
	return tier, nil
}

// parseLevel := term ('+' term)*
// term       := ident ('*' number)?
func (p *parser) parseLevel() (Level, error) {
	var lvl Level
	term := func() error {
		id, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		w := int64(1)
		if p.peek().kind == tokStar {
			p.next()
			num, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			w, err = strconv.ParseInt(num.text, 10, 64)
			if err != nil || w < 1 {
				return &SyntaxError{Pos: num.pos, Msg: fmt.Sprintf("bad weight %q", num.text)}
			}
		}
		lvl.Tenants = append(lvl.Tenants, id.text)
		lvl.Weights = append(lvl.Weights, w)
		return nil
	}
	if err := term(); err != nil {
		return lvl, err
	}
	for p.peek().kind == tokShare {
		p.next()
		if err := term(); err != nil {
			return lvl, err
		}
	}
	// Canonical form: omit the weights entirely when all are 1 (including
	// explicit "*1"), so String/Parse round-trips.
	allOnes := true
	for _, w := range lvl.Weights {
		if w != 1 {
			allOnes = false
			break
		}
	}
	if allOnes {
		lvl.Weights = nil
	}
	return lvl, nil
}
