package policy

import (
	"strings"
	"testing"
)

// apply parses, applies, and renders, so cases read as spec → ops → spec.
func apply(t *testing.T, spec string, ops ...Op) (string, error) {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	before := s.String()
	out, err := s.Apply(ops)
	if got := s.String(); got != before {
		t.Fatalf("Apply mutated the receiver: %q -> %q", before, got)
	}
	if err != nil {
		return "", err
	}
	return out.String(), nil
}

func TestSpecApply(t *testing.T) {
	cases := []struct {
		name string
		spec string
		ops  []Op
		want string
	}{
		{"add to existing level", "a + b >> c",
			[]Op{{Kind: OpAdd, Tenant: "d", Tier: 0, Level: 0}},
			"a + b + d >> c"},
		{"add weighted to existing level", "a + b",
			[]Op{{Kind: OpAdd, Tenant: "c", Weight: 3}},
			"a + b + c*3"},
		{"add weighted into weighted level", "a*2 + b",
			[]Op{{Kind: OpAdd, Tenant: "c"}},
			"a*2 + b + c"},
		{"add new level", "a > b",
			[]Op{{Kind: OpAdd, Tenant: "c", Tier: 0, Level: 2}},
			"a > b > c"},
		{"add new tier", "a >> b",
			[]Op{{Kind: OpAdd, Tenant: "c", Tier: 2}},
			"a >> b >> c"},
		{"add new weighted tier", "a",
			[]Op{{Kind: OpAdd, Tenant: "b", Tier: 1, Weight: 2}},
			"a >> b*2"},
		{"remove from shared level", "a + b + c",
			[]Op{{Kind: OpRemove, Tenant: "b"}},
			"a + c"},
		{"remove collapses tier", "a >> b >> c",
			[]Op{{Kind: OpRemove, Tenant: "b"}},
			"a >> c"},
		{"remove collapses level", "a > b >> c",
			[]Op{{Kind: OpRemove, Tenant: "b"}},
			"a >> c"},
		{"remove normalizes weights", "a*2 + b",
			[]Op{{Kind: OpRemove, Tenant: "a"}},
			"b"},
		{"set weight", "a + b",
			[]Op{{Kind: OpSetWeight, Tenant: "b", Weight: 5}},
			"a + b*5"},
		{"set weight back to default normalizes", "a*2 + b",
			[]Op{{Kind: OpSetWeight, Tenant: "a", Weight: 1}},
			"a + b"},
		{"set weight 1 on implicit default is a no-op", "a + b",
			[]Op{{Kind: OpSetWeight, Tenant: "a", Weight: 1}},
			"a + b"},
		{"demote", "a + b >> c",
			[]Op{{Kind: OpDemote, Tenant: "a"}},
			"b >> c >> a"},
		{"ops compose in order", "a + b",
			[]Op{
				{Kind: OpAdd, Tenant: "c", Tier: 1},
				{Kind: OpSetWeight, Tenant: "c", Weight: 4},
				{Kind: OpRemove, Tenant: "a"},
			},
			"b >> c*4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := apply(t, tc.spec, tc.ops...)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if got != tc.want {
				t.Errorf("got %q, want %q", got, tc.want)
			}
			// Edited specs stay canonical: Parse(String()) round-trips.
			if rt, err := Parse(got); err != nil || rt.String() != got {
				t.Errorf("round-trip of %q failed: %v", got, err)
			}
		})
	}
}

func TestSpecApplyErrors(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		ops     []Op
		errPart string
	}{
		{"no ops", "a", nil, "no ops"},
		{"unknown kind", "a", []Op{{Kind: "promote", Tenant: "a"}}, "unknown op kind"},
		{"add duplicate", "a + b", []Op{{Kind: OpAdd, Tenant: "a"}}, "already in specification"},
		{"add empty name", "a", []Op{{Kind: OpAdd, Tenant: ""}}, "empty tenant name"},
		{"add negative weight", "a", []Op{{Kind: OpAdd, Tenant: "b", Weight: -1}}, "negative weight"},
		{"add tier out of range", "a", []Op{{Kind: OpAdd, Tenant: "b", Tier: 5}}, "tier 5 outside"},
		{"add level out of range", "a", []Op{{Kind: OpAdd, Tenant: "b", Tier: 0, Level: 3}}, "level 3 outside"},
		{"add new tier with nonzero level", "a", []Op{{Kind: OpAdd, Tenant: "b", Tier: 1, Level: 1}}, "requires level 0"},
		{"remove unknown", "a", []Op{{Kind: OpRemove, Tenant: "x"}}, "not in specification"},
		{"remove last tenant", "a", []Op{{Kind: OpRemove, Tenant: "a"}}, "empty"},
		{"set weight unknown tenant", "a", []Op{{Kind: OpSetWeight, Tenant: "x", Weight: 2}}, "not in specification"},
		{"set weight zero", "a", []Op{{Kind: OpSetWeight, Tenant: "a", Weight: 0}}, "below 1"},
		{"demote unknown", "a", []Op{{Kind: OpDemote, Tenant: "x"}}, "not in specification"},
		{"demote sole tenant", "a", []Op{{Kind: OpDemote, Tenant: "a"}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := apply(t, tc.spec, tc.ops...)
			if tc.name == "demote sole tenant" {
				// Demoting the only tenant is a structural no-op and legal.
				if err != nil {
					t.Fatalf("Apply: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Apply succeeded with %q, want error containing %q", got, tc.errPart)
			}
			if tc.errPart != "" && !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}
