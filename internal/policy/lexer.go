package policy

import (
	"fmt"
	"unicode"
)

// tokenKind enumerates the lexical tokens of the composition language.
type tokenKind int

const (
	tokIdent  tokenKind = iota // tenant identifier
	tokStrict                  // >>
	tokPrefer                  // >
	tokShare                   // +
	tokStar                    // * (weight marker)
	tokNumber                  // integer literal (weights)
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokStrict:
		return `">>"`
	case tokPrefer:
		return `">"`
	case tokShare:
		return `"+"`
	case tokStar:
		return `"*"`
	case tokNumber:
		return "number"
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports a lexing or parsing failure with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("policy: offset %d: %s", e.Pos, e.Msg)
}

// lex tokenizes a specification string. Identifiers start with a letter or
// underscore and continue with letters, digits, underscores, dots, or
// dashes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '>':
			if i+1 < n && input[i+1] == '>' {
				toks = append(toks, token{tokStrict, ">>", i})
				i += 2
			} else {
				toks = append(toks, token{tokPrefer, ">", i})
				i++
			}
		case c == '+':
			toks = append(toks, token{tokShare, "+", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c >= '0' && c <= '9':
			start := i
			for i < n && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			// A digit run followed by identifier characters is a
			// malformed identifier, not a number.
			if i < n && isIdentPart(rune(input[i])) {
				return nil, &SyntaxError{Pos: start, Msg: "identifier cannot start with a digit"}
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || c == '.' || c == '-' || unicode.IsLetter(c) || unicode.IsDigit(c)
}
