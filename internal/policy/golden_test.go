package policy

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestStringGolden pins the canonical printer output for a spread of
// syntactic shapes — messy whitespace, redundant *1 weights, deep nesting —
// in a single golden file. The printer defines the canonical form the
// control-plane API and logs expose, so any change must be deliberate.
func TestStringGolden(t *testing.T) {
	inputs := []string{
		"T1",
		"T1 + T2",
		"T1>>T2",
		"  a   +  b >c ",
		"a*3 + b",
		"a*1 + b*1",
		"gold >> silver > bronze >> scavenger",
		"a*2 + b*5 > c >> d + e*3",
		"t1 + t2 + t3 + t4 > u1 >> v1*9 + v2",
	}
	var sb strings.Builder
	for _, in := range inputs {
		spec := MustParse(in)
		out := spec.String()
		fmt.Fprintf(&sb, "%-40q => %q\n", in, out)
		// The canonical form must be a fixed point of Parse∘String.
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(String(%q)) failed: %v", in, err)
		}
		if again.String() != out {
			t.Fatalf("printer not idempotent for %q: %q then %q", in, out, again.String())
		}
	}
	got := sb.String()

	path := filepath.Join("testdata", "printer.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestStringGolden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("printer output drifted from %s:\n--- got\n%s--- want\n%s", path, got, want)
	}
}
