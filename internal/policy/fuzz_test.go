package policy

import (
	"reflect"
	"testing"
)

// FuzzParse checks that the parser never panics, that accepted inputs
// produce valid specs, and that accepted specs survive a canonical-form
// round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"T1",
		"T1 >> T2",
		"T1 >> T2 > T3 + T4 >> T5",
		"a+b+c",
		"x > y > z",
		"",
		">>",
		"T1 +",
		"tenant_1.web-frontend >> _x",
		"T1>>T2+T3>T4",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v (input %q)", err, input)
		}
		again, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", spec.String(), err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed the spec: %q", input)
		}
	})
}
