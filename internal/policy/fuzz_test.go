package policy

import (
	"reflect"
	"testing"
)

// FuzzParse checks that the parser never panics, that accepted inputs
// produce valid specs, and that accepted specs survive a canonical-form
// round trip.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v (input %q)", err, input)
		}
		again, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", spec.String(), err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed the spec: %q", input)
		}
	})
}

// fuzzSeeds is the shared corpus: well-formed specs, weighted shares,
// malformed fragments, and lexer edge cases.
var fuzzSeeds = []string{
	"T1",
	"T1 >> T2",
	"T1 >> T2 > T3 + T4 >> T5",
	"a+b+c",
	"x > y > z",
	"",
	">>",
	"T1 +",
	"tenant_1.web-frontend >> _x",
	"T1>>T2+T3>T4",
	"a*3 + b*2",
	"a*0 + b",
	"a >> a",
	"a * 9999999999999999999",
	"a\t+\nb",
	"\x00",
	"a >",
	"* 2",
}

// FuzzSpecOps goes one layer deeper than FuzzParse: for every accepted
// spec it exercises the Spec methods the runtime controller calls
// (Tenants, Find, Relate, Demote) and checks they never panic and keep the
// spec's invariants — a demoted spec must stay valid, still round-trip
// through the canonical form, and place the demoted tenant strictly below
// every other.
func FuzzSpecOps(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := Parse(input)
		if err != nil {
			return
		}
		tenants := spec.Tenants()
		for _, a := range tenants {
			if _, ok := spec.Find(a); !ok {
				t.Fatalf("listed tenant %q not found (input %q)", a, input)
			}
			for _, b := range tenants {
				if _, err := spec.Relate(a, b); err != nil {
					t.Fatalf("relate %q/%q failed on valid spec: %v (input %q)", a, b, err, input)
				}
			}
		}
		if _, err := spec.Relate("\x00absent", tenants[0]); err == nil {
			t.Fatalf("relate with absent tenant succeeded (input %q)", input)
		}
		demoted := spec.Demote(tenants[0])
		if err := demoted.Validate(); err != nil {
			t.Fatalf("demoted spec invalid: %v (input %q)", err, input)
		}
		again, err := Parse(demoted.String())
		if err != nil {
			t.Fatalf("demoted canonical form %q does not re-parse: %v", demoted.String(), err)
		}
		if !reflect.DeepEqual(demoted, again) {
			t.Fatalf("demoted round trip changed the spec (input %q)", input)
		}
		for _, other := range demoted.Tenants() {
			if other == tenants[0] {
				continue
			}
			rel, err := demoted.Relate(tenants[0], other)
			if err != nil {
				t.Fatalf("relate after demote: %v (input %q)", err, input)
			}
			if rel != StrictlyBelow {
				t.Fatalf("demoted tenant %q is %v relative to %q, want strictly below (input %q)",
					tenants[0], rel, other, input)
			}
		}
	})
}
