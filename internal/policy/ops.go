package policy

import "fmt"

// Targeted spec edits, the vocabulary of the API's PATCH /v1/spec: small
// named operations applied to a copy of a spec instead of replacing the
// whole document. Each op addresses positions by tier/level index so a
// client can edit what it sees from GET /v1/spec without re-sending (and
// possibly clobbering) the rest.

// Op kinds accepted by Spec.Apply.
const (
	// OpAdd inserts Op.Tenant into tier Op.Tier, level Op.Level, with
	// share weight Op.Weight (0 = default 1). Tier == len(Tiers) appends
	// a new strictly-lowest tier (Level must then be 0); Level ==
	// len(Levels) appends a new least-preferred level to the tier.
	OpAdd = "add"
	// OpRemove deletes Op.Tenant wherever it appears; tiers or levels
	// left empty are dropped.
	OpRemove = "remove"
	// OpSetWeight sets Op.Tenant's share weight to Op.Weight (≥ 1).
	OpSetWeight = "set_weight"
	// OpDemote moves Op.Tenant into a new strictly-lowest tier of its
	// own (the quarantine edit).
	OpDemote = "demote"
)

// Op is one targeted edit of a Spec.
type Op struct {
	// Kind selects the operation: OpAdd, OpRemove, OpSetWeight, OpDemote.
	Kind string `json:"op"`
	// Tenant names the tenant the op concerns.
	Tenant string `json:"tenant"`
	// Tier and Level address the insertion point (OpAdd only).
	Tier  int `json:"tier,omitempty"`
	Level int `json:"level,omitempty"`
	// Weight is the share weight for OpAdd (0 = default) and
	// OpSetWeight (must be ≥ 1).
	Weight int64 `json:"weight,omitempty"`
}

// Apply returns a new Spec with the ops applied in order, leaving the
// receiver untouched. It fails on the first invalid op (with its index)
// or if the final spec does not Validate; on error the returned spec is
// nil and nothing is partially applied from the caller's perspective.
func (s *Spec) Apply(ops []Op) (*Spec, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("policy: no ops to apply")
	}
	out := s.clone()
	for i, op := range ops {
		var err error
		switch op.Kind {
		case OpAdd:
			err = out.opAdd(op)
		case OpRemove:
			err = out.opRemove(op.Tenant)
		case OpSetWeight:
			err = out.opSetWeight(op)
		case OpDemote:
			if _, ok := out.Find(op.Tenant); !ok {
				err = fmt.Errorf("tenant %q not in specification", op.Tenant)
			} else {
				out = out.Demote(op.Tenant)
			}
		default:
			err = fmt.Errorf("unknown op kind %q", op.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("policy: op %d (%s %q): %w", i, op.Kind, op.Tenant, err)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// clone deep-copies the spec.
func (s *Spec) clone() *Spec {
	out := &Spec{Tiers: make([]Tier, len(s.Tiers))}
	for ti, tier := range s.Tiers {
		nt := Tier{Levels: make([]Level, len(tier.Levels))}
		for li, lvl := range tier.Levels {
			nl := Level{Tenants: append([]string(nil), lvl.Tenants...)}
			if lvl.Weights != nil {
				nl.Weights = append([]int64(nil), lvl.Weights...)
			}
			nt.Levels[li] = nl
		}
		out.Tiers[ti] = nt
	}
	return out
}

func (s *Spec) opAdd(op Op) error {
	if op.Tenant == "" {
		return fmt.Errorf("empty tenant name")
	}
	if _, dup := s.Find(op.Tenant); dup {
		return fmt.Errorf("tenant %q already in specification", op.Tenant)
	}
	if op.Weight < 0 {
		return fmt.Errorf("negative weight %d", op.Weight)
	}
	if op.Tier < 0 || op.Tier > len(s.Tiers) {
		return fmt.Errorf("tier %d outside [0,%d]", op.Tier, len(s.Tiers))
	}
	if op.Tier == len(s.Tiers) {
		if op.Level != 0 {
			return fmt.Errorf("new tier %d requires level 0, got %d", op.Tier, op.Level)
		}
		lvl := Level{Tenants: []string{op.Tenant}}
		if op.Weight > 1 {
			lvl.Weights = []int64{op.Weight}
		}
		s.Tiers = append(s.Tiers, Tier{Levels: []Level{lvl}})
		return nil
	}
	tier := &s.Tiers[op.Tier]
	if op.Level < 0 || op.Level > len(tier.Levels) {
		return fmt.Errorf("level %d outside [0,%d]", op.Level, len(tier.Levels))
	}
	if op.Level == len(tier.Levels) {
		lvl := Level{Tenants: []string{op.Tenant}}
		if op.Weight > 1 {
			lvl.Weights = []int64{op.Weight}
		}
		tier.Levels = append(tier.Levels, lvl)
		return nil
	}
	lvl := &tier.Levels[op.Level]
	w := op.Weight
	if w == 0 {
		w = 1
	}
	if lvl.Weights == nil && w != 1 {
		// Materialize the implicit all-1 weights before adding an
		// explicit one.
		lvl.Weights = make([]int64, len(lvl.Tenants))
		for i := range lvl.Weights {
			lvl.Weights[i] = 1
		}
	}
	lvl.Tenants = append(lvl.Tenants, op.Tenant)
	if lvl.Weights != nil {
		lvl.Weights = append(lvl.Weights, w)
	}
	return nil
}

func (s *Spec) opRemove(tenant string) error {
	if _, ok := s.Find(tenant); !ok {
		return fmt.Errorf("tenant %q not in specification", tenant)
	}
	// Demote relocates the tenant to a fresh bottom tier; dropping that
	// tier is exactly removal with the same empty-level/tier cleanup and
	// weight normalization.
	d := s.Demote(tenant)
	d.Tiers = d.Tiers[:len(d.Tiers)-1]
	s.Tiers = d.Tiers
	return nil
}

func (s *Spec) opSetWeight(op Op) error {
	if op.Weight < 1 {
		return fmt.Errorf("weight %d below 1", op.Weight)
	}
	pos, ok := s.Find(op.Tenant)
	if !ok {
		return fmt.Errorf("tenant %q not in specification", op.Tenant)
	}
	lvl := &s.Tiers[pos.Tier].Levels[pos.Level]
	if lvl.Weights == nil {
		if op.Weight == 1 {
			return nil // already the implicit default
		}
		lvl.Weights = make([]int64, len(lvl.Tenants))
		for i := range lvl.Weights {
			lvl.Weights[i] = 1
		}
	}
	lvl.Weights[pos.Index] = op.Weight
	// Normalize back to nil when every weight is the default, matching
	// what Parse builds so edited specs round-trip canonically.
	allDefault := true
	for _, w := range lvl.Weights {
		if w != 1 {
			allDefault = false
			break
		}
	}
	if allDefault {
		lvl.Weights = nil
	}
	return nil
}
