package policy

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperExample(t *testing.T) {
	// The example from §3.1: T1 >> T2 > T3 + T4 >> T5.
	s, err := Parse("T1 >> T2 > T3 + T4 >> T5")
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{Tiers: []Tier{
		{Levels: []Level{{Tenants: []string{"T1"}}}},
		{Levels: []Level{
			{Tenants: []string{"T2"}},
			{Tenants: []string{"T3", "T4"}},
		}},
		{Levels: []Level{{Tenants: []string{"T5"}}}},
	}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}
}

func TestParseFig3Example(t *testing.T) {
	// Figure 3's operator policy: T1 >> T2 + T3.
	s, err := Parse("T1 >> T2 + T3")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tiers) != 2 {
		t.Fatalf("tiers = %d, want 2", len(s.Tiers))
	}
	if got := s.Tiers[1].Levels[0].Tenants; !reflect.DeepEqual(got, []string{"T2", "T3"}) {
		t.Fatalf("sharing level = %v", got)
	}
}

func TestParseSingleTenant(t *testing.T) {
	s, err := Parse("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tenants(); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Fatalf("tenants = %v", got)
	}
}

func TestParseWhitespaceInsensitive(t *testing.T) {
	a, err := Parse("T1>>T2+T3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("  T1   >>\n\tT2 +T3  ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("whitespace changed the parse")
	}
}

func TestParseIdentifierCharset(t *testing.T) {
	s, err := Parse("tenant_1.web-frontend >> _x")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tenants(); !reflect.DeepEqual(got, []string{"tenant_1.web-frontend", "_x"}) {
		t.Fatalf("tenants = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		">> T1",          // leading operator
		"T1 >>",          // trailing operator
		"T1 + ",          // trailing share
		"T1 ++ T2",       // double operator
		"T1 > > T2",      // split >> is two prefers with missing operand
		"T1 T2",          // missing operator
		"T1 >> T2 ?? T3", // bad character
		"1T",             // identifier cannot start with a digit
		"T1 + T1",        // duplicate tenant
		"T1 >> T2 > T1",  // duplicate across tiers
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("T1 >> ?")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Pos != 6 {
		t.Fatalf("error position %d, want 6", se.Pos)
	}
	if !strings.Contains(se.Error(), "offset 6") {
		t.Fatalf("error text %q lacks offset", se.Error())
	}
}

func TestStringCanonical(t *testing.T) {
	s := MustParse("T1>>T2+T3>T4")
	if got := s.String(); got != "T1 >> T2 + T3 > T4" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRoundTrip(t *testing.T) {
	inputs := []string{
		"T1",
		"T1 + T2",
		"T1 > T2",
		"T1 >> T2",
		"T1 >> T2 > T3 + T4 >> T5",
		"a + b + c > d >> e + f",
	}
	for _, in := range inputs {
		s := MustParse(in)
		again := MustParse(s.String())
		if !reflect.DeepEqual(s, again) {
			t.Errorf("round trip of %q: %+v != %+v", in, s, again)
		}
	}
}

// TestRoundTripProperty generates random specs and checks
// Parse(String(spec)) == spec.
func TestRoundTripProperty(t *testing.T) {
	gen := func(rng *rand.Rand) *Spec {
		s := &Spec{}
		id := 0
		tiers := 1 + rng.Intn(4)
		for i := 0; i < tiers; i++ {
			var tier Tier
			levels := 1 + rng.Intn(3)
			for j := 0; j < levels; j++ {
				var lvl Level
				tenants := 1 + rng.Intn(3)
				for k := 0; k < tenants; k++ {
					lvl.Tenants = append(lvl.Tenants, fmt.Sprintf("t%d", id))
					id++
				}
				tier.Levels = append(tier.Levels, lvl)
			}
			s.Tiers = append(s.Tiers, tier)
		}
		return s
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		s := gen(rng)
		parsed, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if !reflect.DeepEqual(parsed, s) {
			t.Fatalf("round trip failed for %q", s.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input should panic")
		}
	}()
	MustParse(">>")
}

func TestTenantsOrder(t *testing.T) {
	s := MustParse("T1 >> T2 > T3 + T4 >> T5")
	want := []string{"T1", "T2", "T3", "T4", "T5"}
	if got := s.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tenants() = %v, want %v", got, want)
	}
}

func TestFind(t *testing.T) {
	s := MustParse("T1 >> T2 > T3 + T4 >> T5")
	cases := []struct {
		tenant string
		want   Position
	}{
		{"T1", Position{0, 0, 0}},
		{"T2", Position{1, 0, 0}},
		{"T3", Position{1, 1, 0}},
		{"T4", Position{1, 1, 1}},
		{"T5", Position{2, 0, 0}},
	}
	for _, c := range cases {
		got, ok := s.Find(c.tenant)
		if !ok || got != c.want {
			t.Errorf("Find(%q) = %+v,%v want %+v", c.tenant, got, ok, c.want)
		}
	}
	if _, ok := s.Find("nope"); ok {
		t.Fatal("Find of absent tenant succeeded")
	}
}

func TestRelate(t *testing.T) {
	s := MustParse("T1 >> T2 > T3 + T4 >> T5")
	cases := []struct {
		a, b string
		want Relation
	}{
		{"T1", "T2", StrictlyAbove},
		{"T2", "T1", StrictlyBelow},
		{"T2", "T3", Prefers},
		{"T3", "T2", PreferredBy},
		{"T3", "T4", Shares},
		{"T3", "T3", Shares},
		{"T4", "T5", StrictlyAbove},
	}
	for _, c := range cases {
		got, err := s.Relate(c.a, c.b)
		if err != nil {
			t.Fatalf("Relate(%s,%s): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Relate(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if _, err := s.Relate("T1", "zz"); err == nil {
		t.Fatal("Relate with unknown tenant should fail")
	}
	if _, err := s.Relate("zz", "T1"); err == nil {
		t.Fatal("Relate with unknown tenant should fail")
	}
}

func TestRelationString(t *testing.T) {
	names := map[Relation]string{
		Shares:        "shares",
		Prefers:       "prefers",
		PreferredBy:   "preferred-by",
		StrictlyAbove: "strictly-above",
		StrictlyBelow: "strictly-below",
		Relation(99):  "relation(99)",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
}

func TestValidateDirectly(t *testing.T) {
	bad := []*Spec{
		{},
		{Tiers: []Tier{{}}},
		{Tiers: []Tier{{Levels: []Level{{}}}}},
		{Tiers: []Tier{{Levels: []Level{{Tenants: []string{""}}}}}},
		{Tiers: []Tier{{Levels: []Level{{Tenants: []string{"a", "a"}}}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate succeeded, want error", i)
		}
	}
}

// TestLexerProperty: lexing never panics and always terminates with EOF on
// arbitrary input.
func TestLexerProperty(t *testing.T) {
	f := func(input string) bool {
		toks, err := lex(input)
		if err != nil {
			return true // rejection is fine
		}
		return len(toks) > 0 && toks[len(toks)-1].kind == tokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenKindString(t *testing.T) {
	for k, want := range map[tokenKind]string{
		tokIdent: "identifier", tokStrict: `">>"`, tokPrefer: `">"`,
		tokShare: `"+"`, tokEOF: "end of input", tokenKind(42): "token(42)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	in := "T1 >> T2 > T3 + T4 >> T5 > T6 + T7 + T8"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(in); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDemote(t *testing.T) {
	s := MustParse("T1 >> T2 > T3 + T4 >> T5")
	d := s.Demote("T3")
	if got, want := d.String(), "T1 >> T2 > T4 >> T5 >> T3"; got != want {
		t.Fatalf("Demote(T3) = %q, want %q", got, want)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("demoted spec invalid: %v", err)
	}
	// Original unchanged.
	if s.String() != "T1 >> T2 > T3 + T4 >> T5" {
		t.Fatal("Demote mutated the receiver")
	}
}

func TestDemoteCollapsesEmptyStructures(t *testing.T) {
	s := MustParse("T1 >> T2")
	d := s.Demote("T1") // tier 0 empties out
	if got, want := d.String(), "T2 >> T1"; got != want {
		t.Fatalf("Demote(T1) = %q, want %q", got, want)
	}
	// Level removal inside a tier.
	s2 := MustParse("T1 > T2 >> T3")
	d2 := s2.Demote("T1")
	if got, want := d2.String(), "T2 >> T3 >> T1"; got != want {
		t.Fatalf("Demote = %q, want %q", got, want)
	}
}

func TestDemoteAbsentTenant(t *testing.T) {
	s := MustParse("T1 >> T2")
	d := s.Demote("ghost")
	if d.String() != "T1 >> T2" {
		t.Fatalf("Demote(absent) changed the spec: %q", d.String())
	}
}

func TestDemoteSingleTenant(t *testing.T) {
	s := MustParse("T1")
	d := s.Demote("T1")
	if d.String() != "T1" {
		t.Fatalf("Demote(only tenant) = %q, want %q", d.String(), "T1")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("demoted singleton invalid: %v", err)
	}
}

func TestParseWeightedShares(t *testing.T) {
	s, err := Parse("T1*2 + T2 >> T3*4 + T4*3")
	if err != nil {
		t.Fatal(err)
	}
	lvl := s.Tiers[0].Levels[0]
	if lvl.WeightOf(0) != 2 || lvl.WeightOf(1) != 1 {
		t.Fatalf("tier 0 weights: %v", lvl.Weights)
	}
	if lvl.TotalWeight() != 3 {
		t.Fatalf("total weight = %d", lvl.TotalWeight())
	}
	lvl2 := s.Tiers[1].Levels[0]
	if lvl2.WeightOf(0) != 4 || lvl2.WeightOf(1) != 3 {
		t.Fatalf("tier 1 weights: %v", lvl2.Weights)
	}
}

func TestWeightedCanonicalForm(t *testing.T) {
	s := MustParse("T1*2+T2")
	if got := s.String(); got != "T1*2 + T2" {
		t.Fatalf("String() = %q", got)
	}
	again := MustParse(s.String())
	if !reflect.DeepEqual(s, again) {
		t.Fatal("weighted round trip failed")
	}
	// Weight 1 written explicitly normalizes away only if no other
	// weights exist in the level.
	unweighted := MustParse("T1 + T2")
	if unweighted.Tiers[0].Levels[0].Weights != nil {
		t.Fatal("all-ones weights should normalize to nil")
	}
}

func TestParseWeightErrors(t *testing.T) {
	for _, in := range []string{
		"T1*",      // missing weight
		"T1*0",     // zero weight
		"T1*x",     // non-numeric
		"T1 * * 2", // double star
		"*2",       // weight without tenant
		"T1*2.5",   // non-integer (lexes as 2 then .5 → malformed)
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestDemoteKeepsWeights(t *testing.T) {
	s := MustParse("T1*2 + T2*3 + T3")
	d := s.Demote("T2")
	if got := d.String(); got != "T1*2 + T3 >> T2" {
		t.Fatalf("Demote = %q", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDemoteNormalizesDefaultWeights is the regression for a fuzzer
// finding (FuzzSpecOps, input "A*2+B"): demoting the only weighted tenant
// used to leave an all-ones Weights slice behind, so the demoted spec no
// longer round-tripped through its canonical form, which prints weight-1
// shares bare.
func TestDemoteNormalizesDefaultWeights(t *testing.T) {
	s := MustParse("A*2+B")
	d := s.Demote("A")
	if got := d.String(); got != "B >> A" {
		t.Fatalf("Demote = %q", got)
	}
	again, err := Parse(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, again) {
		t.Fatalf("demoted spec does not round-trip: %#v vs %#v", d, again)
	}
}

func TestValidateWeightMismatch(t *testing.T) {
	bad := &Spec{Tiers: []Tier{{Levels: []Level{{
		Tenants: []string{"a", "b"},
		Weights: []int64{1},
	}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("weight/tenant length mismatch accepted")
	}
	neg := &Spec{Tiers: []Tier{{Levels: []Level{{
		Tenants: []string{"a"},
		Weights: []int64{0},
	}}}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("non-positive weight accepted")
	}
}
