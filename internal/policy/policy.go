// Package policy implements the operator's inter-tenant composition
// language from §3.1 of the QVISOR paper.
//
// The operator writes a single expression over tenant identifiers with
// three infix operators, loosest first:
//
//	>>   strict priority: the preceding tenants have strictly higher
//	     priority than the following ones, mandating isolation
//	>    best-effort preference: the preceding tenants are preferentially
//	     treated with respect to the following ones
//	+    sharing: the tenants share the scheduling resources
//
// For example, "T1 >> T2 > T3 + T4 >> T5" gives T1 strict priority over
// everything, prefers T2 over T3 and T4 (best effort), lets T3 and T4
// share, and puts T5 strictly last.
//
// The grammar, with >> binding loosest and + tightest:
//
//	spec  := tier  ('>>' tier)*
//	tier  := level ('>'  level)*
//	level := ident ('+'  ident)*
//
// A Spec is therefore a list of Tiers (strict-priority bands, highest
// first); each Tier is a list of Levels (best-effort preference order);
// each Level is a set of tenants that share.
package policy

import (
	"fmt"
	"strings"
)

// Spec is a parsed operator policy: strict-priority tiers, highest first.
type Spec struct {
	Tiers []Tier
}

// Tier is one strict-priority band: best-effort preference levels, most
// preferred first.
type Tier struct {
	Levels []Level
}

// Level is a set of tenants that share the scheduling resources.
//
// Weights, when non-nil, gives each tenant's share weight (parallel to
// Tenants; written "T1*2 + T2" for a 2:1 split). Nil means equal weights.
// Weighted sharing is an extension beyond the paper's three basic
// operators, in the direction of §5's "increasing specification
// expressivity".
type Level struct {
	Tenants []string
	Weights []int64
}

// WeightOf returns tenant index i's share weight (1 when unspecified).
func (l Level) WeightOf(i int) int64 {
	if l.Weights == nil || i >= len(l.Weights) || l.Weights[i] <= 0 {
		return 1
	}
	return l.Weights[i]
}

// TotalWeight sums the level's share weights.
func (l Level) TotalWeight() int64 {
	var total int64
	for i := range l.Tenants {
		total += l.WeightOf(i)
	}
	return total
}

// Tenants returns every tenant in the spec, in declaration order.
func (s *Spec) Tenants() []string {
	var out []string
	for _, tier := range s.Tiers {
		for _, lvl := range tier.Levels {
			out = append(out, lvl.Tenants...)
		}
	}
	return out
}

// Position locates a tenant inside a spec.
type Position struct {
	// Tier is the strict-priority band index (0 = highest priority).
	Tier int
	// Level is the preference level within the tier (0 = most preferred).
	Level int
	// Index is the position within the sharing level.
	Index int
}

// Find returns the position of a tenant, or false if absent.
func (s *Spec) Find(tenant string) (Position, bool) {
	for ti, tier := range s.Tiers {
		for li, lvl := range tier.Levels {
			for i, t := range lvl.Tenants {
				if t == tenant {
					return Position{Tier: ti, Level: li, Index: i}, true
				}
			}
		}
	}
	return Position{}, false
}

// String renders the spec in canonical form: single spaces around ">>" and
// ">", " + " between sharing tenants. Parse(String()) round-trips.
func (s *Spec) String() string {
	tiers := make([]string, len(s.Tiers))
	for i, tier := range s.Tiers {
		levels := make([]string, len(tier.Levels))
		for j, lvl := range tier.Levels {
			terms := make([]string, len(lvl.Tenants))
			for k, t := range lvl.Tenants {
				if w := lvl.WeightOf(k); w > 1 {
					terms[k] = fmt.Sprintf("%s*%d", t, w)
				} else {
					terms[k] = t
				}
			}
			levels[j] = strings.Join(terms, " + ")
		}
		tiers[i] = strings.Join(levels, " > ")
	}
	return strings.Join(tiers, " >> ")
}

// Validate checks structural invariants: at least one tier, no empty tier,
// level, or tenant name, and no duplicate tenants.
func (s *Spec) Validate() error {
	if len(s.Tiers) == 0 {
		return fmt.Errorf("policy: empty specification")
	}
	seen := make(map[string]bool)
	for ti, tier := range s.Tiers {
		if len(tier.Levels) == 0 {
			return fmt.Errorf("policy: tier %d has no levels", ti)
		}
		for li, lvl := range tier.Levels {
			if len(lvl.Tenants) == 0 {
				return fmt.Errorf("policy: tier %d level %d has no tenants", ti, li)
			}
			if lvl.Weights != nil && len(lvl.Weights) != len(lvl.Tenants) {
				return fmt.Errorf("policy: tier %d level %d has %d weights for %d tenants",
					ti, li, len(lvl.Weights), len(lvl.Tenants))
			}
			for i, t := range lvl.Tenants {
				if t == "" {
					return fmt.Errorf("policy: empty tenant name in tier %d level %d", ti, li)
				}
				if seen[t] {
					return fmt.Errorf("policy: tenant %q appears more than once", t)
				}
				if lvl.Weights != nil && lvl.Weights[i] < 1 {
					return fmt.Errorf("policy: tenant %q has non-positive weight %d", t, lvl.Weights[i])
				}
				seen[t] = true
			}
		}
	}
	return nil
}

// Relation describes how the policy orders one tenant against another.
type Relation int

const (
	// Shares: the two tenants share resources (same level).
	Shares Relation = iota
	// Prefers: the first tenant is best-effort preferred (same tier,
	// earlier level).
	Prefers
	// PreferredBy: the first tenant is best-effort dominated.
	PreferredBy
	// StrictlyAbove: the first tenant is in a strictly higher tier.
	StrictlyAbove
	// StrictlyBelow: the first tenant is in a strictly lower tier.
	StrictlyBelow
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case Shares:
		return "shares"
	case Prefers:
		return "prefers"
	case PreferredBy:
		return "preferred-by"
	case StrictlyAbove:
		return "strictly-above"
	case StrictlyBelow:
		return "strictly-below"
	default:
		return fmt.Sprintf("relation(%d)", int(r))
	}
}

// Demote returns a copy of the spec with the named tenant removed from its
// current position and placed in a new strictly-lowest tier of its own.
// Tiers or levels left empty by the removal are dropped. If the tenant is
// absent, the copy is returned unchanged. Used by the runtime controller
// to quarantine adversarial tenants.
func (s *Spec) Demote(tenant string) *Spec {
	out := &Spec{}
	found := false
	for _, tier := range s.Tiers {
		var nt Tier
		for _, lvl := range tier.Levels {
			var nl Level
			for i, t := range lvl.Tenants {
				if t == tenant {
					found = true
					continue
				}
				nl.Tenants = append(nl.Tenants, t)
				if lvl.Weights != nil {
					nl.Weights = append(nl.Weights, lvl.WeightOf(i))
				}
			}
			// Normalize: a level whose surviving weights are all the
			// default 1 is represented with a nil slice, as Parse would
			// build it, so demoted specs round-trip canonically.
			allDefault := true
			for _, w := range nl.Weights {
				if w != 1 {
					allDefault = false
					break
				}
			}
			if allDefault {
				nl.Weights = nil
			}
			if len(nl.Tenants) > 0 {
				nt.Levels = append(nt.Levels, nl)
			}
		}
		if len(nt.Levels) > 0 {
			out.Tiers = append(out.Tiers, nt)
		}
	}
	if found {
		out.Tiers = append(out.Tiers, Tier{Levels: []Level{{Tenants: []string{tenant}}}})
	}
	return out
}

// Relate returns how tenant a stands relative to tenant b under the spec.
// It reports an error if either tenant is absent.
func (s *Spec) Relate(a, b string) (Relation, error) {
	pa, ok := s.Find(a)
	if !ok {
		return 0, fmt.Errorf("policy: tenant %q not in specification", a)
	}
	pb, ok := s.Find(b)
	if !ok {
		return 0, fmt.Errorf("policy: tenant %q not in specification", b)
	}
	switch {
	case pa.Tier < pb.Tier:
		return StrictlyAbove, nil
	case pa.Tier > pb.Tier:
		return StrictlyBelow, nil
	case pa.Level < pb.Level:
		return Prefers, nil
	case pa.Level > pb.Level:
		return PreferredBy, nil
	default:
		return Shares, nil
	}
}
