package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of WritePrometheus output
// (Prometheus text exposition format, version 0.0.4).
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the registry in the Prometheus text exposition
// format: families sorted by name, series sorted by label signature,
// histograms as cumulative _bucket/_sum/_count series. A nil registry
// writes nothing. Deterministic for a given registry state, which the
// golden test in internal/api relies on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, f := range snap.Families {
		b.Reset()
		if f.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.Help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type)
		b.WriteByte('\n')
		for _, m := range f.Metrics {
			switch f.Type {
			case "histogram":
				writeHistogram(&b, f.Name, m)
			default:
				writeSeries(&b, f.Name, m.Labels, "", formatFloat(m.Value))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSeries emits one sample line: name{labels,extra} value.
func writeSeries(b *strings.Builder, name string, labels map[string]string, extra, value string) {
	b.WriteString(name)
	if len(labels) > 0 || extra != "" {
		b.WriteByte('{')
		first := true
		for _, k := range sortedKeys(labels) {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labels[k]))
			b.WriteByte('"')
		}
		if extra != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name string, m MetricValue) {
	for _, bk := range m.Buckets {
		le := "+Inf"
		if !math.IsInf(bk.UpperBound, 1) {
			le = formatFloat(bk.UpperBound)
		}
		writeSeries(b, name+"_bucket", m.Labels, `le="`+le+`"`,
			strconv.FormatUint(bk.Cumulative, 10))
	}
	writeSeries(b, name+"_sum", m.Labels, "", strconv.FormatInt(m.Sum, 10))
	writeSeries(b, name+"_count", m.Labels, "", strconv.FormatUint(m.Count, 10))
}

// formatFloat renders a sample value: integers without an exponent or
// trailing zeros, everything else in Go's shortest representation.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
