package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the plain order-statistic quantile: the value at rank
// ceil(q*n) (1-based), matching the estimator's target-rank convention.
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	k := int(math.Ceil(q * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

// TestQuantileProperty checks the estimator's bucket guarantee against
// exact quantiles of sampled data: for every distribution and q, the
// estimate must land in the same log2 bucket as the exact order
// statistic — within (lower, upper] of BucketIndex(exact) — which bounds
// the estimate within a factor of two of the truth.
func TestQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() int64{
		"uniform":  func() int64 { return rng.Int63n(1_000_000) },
		"heavy":    func() int64 { v := rng.Int63n(1 << 20); return v * v >> 16 },
		"constant": func() int64 { return 4096 },
		"small":    func() int64 { return rng.Int63n(3) },
		"bimodal": func() int64 {
			if rng.Intn(2) == 0 {
				return 10 + rng.Int63n(10)
			}
			return 1_000_000 + rng.Int63n(1000)
		},
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range dists {
		for _, n := range []int{1, 10, 1000, 20000} {
			h := &Histogram{}
			samples := make([]int64, n)
			for i := range samples {
				v := gen()
				samples[i] = v
				h.Observe(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range qs {
				exact := exactQuantile(samples, q)
				est := h.Quantile(q)
				bi := BucketIndex(exact)
				lo := 0.0
				if bi > 0 {
					lo = BucketUpperBound(bi - 1)
				}
				hi := BucketUpperBound(bi)
				if est < lo || est > hi {
					t.Errorf("%s n=%d q=%g: estimate %g outside exact value %d's bucket (%g, %g]",
						name, n, q, est, exact, lo, hi)
				}
			}
		}
	}
}

// TestQuantileEdgeCases pins the contract at the boundaries.
func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %g, want 0", got)
	}
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	// q outside [0,1] clamps.
	h.Observe(100)
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("q=-1 (%g) should clamp to q=0 (%g)", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("q=2 (%g) should clamp to q=1 (%g)", got, h.Quantile(1))
	}
	// Values ≤ 1 sit in bucket 0, which interpolates inside (0, 1].
	h2 := &Histogram{}
	h2.Observe(1)
	if got := h2.Quantile(1); got <= 0 || got > 1 {
		t.Errorf("all-ones quantile = %g, want in (0, 1]", got)
	}
	// Overflow bucket reports the last finite bound, never +Inf.
	h3 := &Histogram{}
	h3.Observe(1 << 62)
	if got := h3.Quantile(0.99); math.IsInf(got, 1) || got != BucketUpperBound(HistogramBuckets-1) {
		t.Errorf("overflow quantile = %g, want last finite bound %g",
			got, BucketUpperBound(HistogramBuckets-1))
	}
}

// TestBucketsQuantileMatchesHistogram checks the exported array estimator
// agrees with the Histogram method — single-writer stages that count
// buckets locally must get identical estimates.
func TestBucketsQuantileMatchesHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := &Histogram{}
	counts := make([]uint64, HistogramBuckets+1)
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		h.Observe(v)
		counts[BucketIndex(v)]++
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if hq, bq := h.Quantile(q), BucketsQuantile(counts, q); hq != bq {
			t.Errorf("q=%g: Histogram.Quantile=%g, BucketsQuantile=%g", q, hq, bq)
		}
	}
	// Longer-than-layout arrays truncate rather than panic.
	long := make([]uint64, HistogramBuckets+10)
	copy(long, counts)
	if got, want := BucketsQuantile(long, 0.5), BucketsQuantile(counts, 0.5); got != want {
		t.Errorf("truncated long array: got %g, want %g", got, want)
	}
}
