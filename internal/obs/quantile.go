package obs

// Quantile estimation over the log2 bucket layout. The SLO subsystem
// (internal/slo) computes per-tenant latency percentiles from these
// histograms, and the analyzer math that used to approximate quantiles
// ad hoc routes through the same estimator so every caller agrees on
// the interpolation rule.

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) of the
// observations recorded so far, interpolating linearly inside the log2
// bucket that contains the target rank — the same estimate Prometheus'
// histogram_quantile computes from the cumulative _bucket series. With
// no observations it returns 0; q is clamped into [0, 1]. The estimate
// lands in the same log2 bucket as the exact order statistic, so it is
// within a factor of two of the true quantile (exact for values ≤ 1).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [HistogramBuckets + 1]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	return BucketsQuantile(counts[:], q)
}

// BucketsQuantile is the quantile estimator over a plain bucket-count
// array laid out by BucketIndex: counts[i] observations in bucket i.
// It is exported for single-writer stages (sched.Metrics, internal/slo)
// that count buckets locally on the data path and only publish at sync
// points — they get the exact same estimate a Histogram would give.
// Counts beyond the bucket array are ignored; an all-zero array yields 0.
func BucketsQuantile(counts []uint64, q float64) float64 {
	if len(counts) > HistogramBuckets+1 {
		counts = counts[:HistogramBuckets+1]
	}
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The target rank: the smallest cumulative count that covers the
	// q-fraction of observations. Clamping to ≥ 1 makes q = 0 the
	// minimum (the first non-empty bucket) rather than an empty prefix.
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < target {
			continue
		}
		if i >= HistogramBuckets {
			// Overflow bucket: no finite upper edge to interpolate
			// toward, so report its lower edge (Prometheus does the
			// same for +Inf).
			return BucketUpperBound(HistogramBuckets - 1)
		}
		lo := bucketLowerBound(i)
		hi := BucketUpperBound(i)
		return lo + (hi-lo)*(target-float64(prev))/float64(n)
	}
	// Unreachable: cum == total ≥ target after the loop.
	return BucketUpperBound(HistogramBuckets - 1)
}

// bucketLowerBound is bucket i's exclusive lower bound (0 for bucket 0,
// which absorbs every observation ≤ 1).
func bucketLowerBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	return float64(uint64(1) << uint(i-1))
}
