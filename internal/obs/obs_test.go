package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "help")
	g := r.Gauge("x", "help")
	h := r.Histogram("x_hist", "help")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All methods must no-op on nil receivers.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Families) != 0 {
		t.Fatalf("nil registry snapshot: %+v", snap)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", sb.String(), err)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "", L("x", "1"), L("y", "2"))
	// Same labels in any order name the same series.
	b := r.Counter("dup_total", "", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order must not split series")
	}
	other := r.Counter("dup_total", "", L("x", "other"))
	if a == other {
		t.Fatal("distinct labels must get distinct series")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("clash", "")
}

// TestHistogramBucketProperty checks the bucket invariant for arbitrary
// observations: v lands in the unique bucket i with
// BucketUpperBound(i-1) < v <= BucketUpperBound(i).
func TestHistogramBucketProperty(t *testing.T) {
	prop := func(v int64) bool {
		i := BucketIndex(v)
		if i < 0 || i > HistogramBuckets {
			return false
		}
		upper := BucketUpperBound(i)
		if float64(v) > upper {
			return false
		}
		if i > 0 {
			// v must be strictly above the previous bound, except for
			// values clamped into bucket 0 (v <= 1, incl. negatives).
			if float64(v) <= BucketUpperBound(i-1) && i != HistogramBuckets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramBucketBoundaries pins the exact boundary behavior: powers of
// two are inclusive upper bounds.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{1024, 10}, {1025, 11},
		{1 << 46, 46}, {1<<46 + 1, 47}, {1 << 47, 47},
		{1<<47 + 1, HistogramBuckets}, {math.MaxInt64, HistogramBuckets},
	}
	for _, tc := range cases {
		if got := BucketIndex(tc.v); got != tc.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if !math.IsInf(BucketUpperBound(HistogramBuckets), 1) {
		t.Fatal("overflow bucket bound must be +Inf")
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "")
	for _, v := range []int64{1, 2, 3, 1000, 1 << 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1+2+3+1000+1<<50 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Bucket(HistogramBuckets) != 1 {
		t.Fatalf("overflow bucket = %d", h.Bucket(HistogramBuckets))
	}
	var total uint64
	for i := 0; i <= HistogramBuckets; i++ {
		total += h.Bucket(i)
	}
	if total != h.Count() {
		t.Fatalf("bucket total %d != count %d", total, h.Count())
	}
}

// TestConcurrentIncrements hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race this validates the
// atomic hot path, and the counter/histogram totals must be exact.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 2000
	c := r.Counter("conc_total", "", L("k", "v"))
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_hist", "")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(id*perG + j))
				// Concurrent re-registration must return the same series.
				if r.Counter("conc_total", "", L("k", "v")) != c {
					panic("series identity lost under concurrency")
				}
				if j%64 == 0 {
					r.Snapshot() // readers race writers benignly
				}
			}
		}(i)
	}
	wg.Wait()
	const want = goroutines * perG
	if c.Value() != want {
		t.Fatalf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Fatalf("gauge = %v, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Fatalf("histogram count = %d, want %d", h.Count(), want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a", L("t", "x")).Add(7)
	r.Gauge("b", "help b").Set(1.25)
	h := r.Histogram("c", "help c")
	h.Observe(1)
	h.Observe(100)
	h.Observe(1 << 60) // overflow bucket forces the +Inf bound through JSON
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Families) != 3 {
		t.Fatalf("families = %d", len(back.Families))
	}
	// Families are sorted by name: a_total, b, c.
	if back.Families[0].Metrics[0].Value != 7 || back.Families[1].Metrics[0].Value != 1.25 {
		t.Fatalf("values: %+v", back.Families)
	}
	hist := back.Families[2].Metrics[0]
	if hist.Count != 3 || hist.Sum != 1+100+1<<60 {
		t.Fatalf("histogram: %+v", hist)
	}
	last := hist.Buckets[len(hist.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Cumulative != 3 {
		t.Fatalf("+Inf bucket: %+v", last)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "total things", L("tenant", "web")).Add(3)
	r.Counter("t_total", "total things", L("tenant", "a\"b\\c\nd")).Inc()
	r.Gauge("t_gauge", "a gauge").Set(0.5)
	h := r.Histogram("t_hist", "a histogram")
	h.Observe(1)
	h.Observe(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP t_total total things\n",
		"# TYPE t_total counter\n",
		`t_total{tenant="web"} 3` + "\n",
		`t_total{tenant="a\"b\\c\nd"} 1` + "\n",
		"# TYPE t_gauge gauge\n",
		"t_gauge 0.5\n",
		"# TYPE t_hist histogram\n",
		`t_hist_bucket{le="1"} 1` + "\n",
		`t_hist_bucket{le="4"} 2` + "\n",
		`t_hist_bucket{le="+Inf"} 2` + "\n",
		"t_hist_sum 4\n",
		"t_hist_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Deterministic output.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if out != sb2.String() {
		t.Fatal("exposition must be deterministic")
	}
}
