package obs

import (
	"strings"
	"testing"
)

// TestEnableRuntime: after opting in, every snapshot carries the three
// runtime families with live values; before opting in, none appear.
func TestEnableRuntime(t *testing.T) {
	r := NewRegistry()
	for _, f := range r.Snapshot().Families {
		if strings.HasPrefix(f.Name, "qvisor_runtime_") {
			t.Fatalf("runtime family %s present before EnableRuntime", f.Name)
		}
	}
	r.EnableRuntime()
	r.EnableRuntime() // idempotent
	snap := r.Snapshot()
	got := map[string]float64{}
	for _, f := range snap.Families {
		for _, m := range f.Metrics {
			got[f.Name] = m.Value
		}
	}
	if v, ok := got[MetricRuntimeHeapBytes]; !ok || v <= 0 {
		t.Fatalf("%s = %v, want > 0", MetricRuntimeHeapBytes, v)
	}
	if v, ok := got[MetricRuntimeGoroutines]; !ok || v < 1 {
		t.Fatalf("%s = %v, want >= 1", MetricRuntimeGoroutines, v)
	}
	if _, ok := got[MetricRuntimeGCTotal]; !ok {
		t.Fatalf("%s missing", MetricRuntimeGCTotal)
	}

	// The gauges are refreshed on every snapshot, so the exposition path
	// (which renders from Snapshot) carries them too.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), MetricRuntimeHeapBytes) {
		t.Fatal("exposition missing runtime heap gauge")
	}
}

// TestEnableRuntimeNil: a nil registry ignores the call, like every
// other obs entry point.
func TestEnableRuntimeNil(t *testing.T) {
	var r *Registry
	r.EnableRuntime() // must not panic
	if len(r.Snapshot().Families) != 0 {
		t.Fatal("nil registry produced families")
	}
}
