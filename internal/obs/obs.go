// Package obs is QVISOR's observability layer: a small, dependency-free
// metrics subsystem with monotonic counters, gauges, and fixed-bucket
// log2 histograms behind a Registry.
//
// The design follows the paper's runtime loop (§2, Idea 2): QVISOR
// "monitors the ranks of incoming packets", so the data plane needs cheap
// per-packet bookkeeping that the control plane can export. Instruments are
// updated with single atomic operations on the hot path and read
// consistently enough for telemetry via Snapshot (per-instrument atomic
// loads; a snapshot is not a point-in-time cut across instruments, which is
// the standard Prometheus client contract).
//
// Every instrument handle is nil-safe: methods on a nil *Counter, *Gauge,
// or *Histogram are no-ops, and a nil *Registry returns nil handles. Code
// can therefore instrument unconditionally —
//
//	c := reg.Counter("qvisor_sched_enqueued_total", "…")
//	c.Inc() // no-op (one predictable branch) when reg was nil
//
// — which keeps the uninstrumented hot path within noise of the
// pre-observability build (see BenchmarkObsHotPath in the repo root).
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to an instrument. A set of labels
// distinguishes series within a metric family, Prometheus-style:
// qvisor_sched_dropped_total{scheduler="sppifo8"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready to
// use; a nil *Counter ignores updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can go up and down. The zero value
// is ready to use; a nil *Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (compare-and-swap loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistogramBuckets is the number of finite log2 buckets. Bucket i counts
// observations v with 2^(i-1) < v ≤ 2^i (bucket 0 counts v ≤ 1); values
// above 2^(HistogramBuckets-1) land in the overflow (+Inf) bucket. 48
// buckets cover rank deltas up to 2^47 and sojourn times beyond a day of
// simulated nanoseconds.
const HistogramBuckets = 48

// Histogram is a fixed-bucket log2 histogram for non-negative integer
// observations (rank deltas, queue depths, sojourn nanoseconds). Negative
// observations clamp into the first bucket. A nil *Histogram ignores
// updates.
type Histogram struct {
	buckets [HistogramBuckets + 1]atomic.Uint64 // +1: overflow (+Inf)
	count   atomic.Uint64
	sum     atomic.Int64
}

// BucketIndex returns the bucket for observation v: the smallest i with
// v ≤ 2^i, capped at the overflow bucket. It is exported so single-writer
// callers can stage bucket counts locally and merge them with AddBuckets.
func BucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// bits.Len64(v-1) is ceil(log2(v)) for v ≥ 2.
	i := bits.Len64(uint64(v - 1))
	if i > HistogramBuckets {
		return HistogramBuckets
	}
	return i
}

// BucketUpperBound returns bucket i's inclusive upper bound (math.Inf(1)
// for the overflow bucket).
func BucketUpperBound(i int) float64 {
	if i >= HistogramBuckets {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// AddBuckets merges pre-aggregated observations: counts[i] observations in
// bucket i (as assigned by BucketIndex) plus their total sum. This is the
// batch path for single-writer stages that count locally on the hot path
// and publish at sync points; counts longer than the bucket array are
// truncated.
func (h *Histogram) AddBuckets(counts []uint64, sum int64) {
	if h == nil {
		return
	}
	var total uint64
	for i, n := range counts {
		if i > HistogramBuckets {
			break
		}
		if n != 0 {
			h.buckets[i].Add(n)
			total += n
		}
	}
	if total != 0 {
		h.count.Add(total)
		h.sum.Add(sum)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the (non-cumulative) count of bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}

// metricType enumerates instrument kinds.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// series is one labeled instrument within a family.
type series struct {
	labels []Label
	sig    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series map[string]*series
}

// Registry holds metric families and hands out instrument handles. All
// methods are safe for concurrent use. A nil *Registry returns nil handles
// from every constructor, so callers need no nil checks of their own.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// Runtime telemetry (see EnableRuntime). The handles are written once
	// under mu before rtEnabled is observable, then only read.
	rtEnabled    bool
	rtLastGC     uint32
	rtHeap       *Gauge
	rtGoroutines *Gauge
	rtGC         *Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature serializes labels into a map key. Labels are sorted by key so
// the same set in any order names the same series.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup finds or creates the series for (name, labels). It panics on a
// type conflict — registering the same name as two different instrument
// kinds is a programming error, as in the Prometheus client.
func (r *Registry) lookup(name, help string, typ metricType, labels []Label) *series {
	labels = sortLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.typ, typ))
	}
	if f.help == "" {
		f.help = help
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: labels, sig: sig}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = &Histogram{}
		}
		f.series[sig] = s
	}
	return s
}

// Counter returns the counter named name with the given labels, creating it
// on first use. Repeated calls with the same name and label set return the
// same counter. Returns nil when the registry is nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, labels).c
}

// Gauge returns the gauge named name with the given labels. Returns nil
// when the registry is nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, labels).g
}

// Histogram returns the log2 histogram named name with the given labels.
// Returns nil when the registry is nil.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeHistogram, labels).h
}

// BucketValue is one histogram bucket in a snapshot: the inclusive upper
// bound (serialized as Prometheus' le) and the cumulative count of
// observations ≤ it. The bound marshals as a string because the overflow
// bucket's +Inf has no JSON number representation.
type BucketValue struct {
	UpperBound float64 `json:"-"`
	Cumulative uint64  `json:"cumulative"`
}

// MarshalJSON implements json.Marshaler, writing the upper bound as
// Prometheus' le string ("1024", "+Inf").
func (b BucketValue) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(struct {
		Le         string `json:"le"`
		Cumulative uint64 `json:"cumulative"`
	}{le, b.Cumulative})
}

// UnmarshalJSON implements json.Unmarshaler (round-trips MarshalJSON).
func (b *BucketValue) UnmarshalJSON(data []byte) error {
	var wire struct {
		Le         string `json:"le"`
		Cumulative uint64 `json:"cumulative"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	if wire.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(wire.Le, 64)
		if err != nil {
			return fmt.Errorf("obs: bad bucket bound %q: %w", wire.Le, err)
		}
		b.UpperBound = v
	}
	b.Cumulative = wire.Cumulative
	return nil
}

// MetricValue is one series in a snapshot. Value is set for counters and
// gauges; Count/Sum/Buckets for histograms.
type MetricValue struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     int64             `json:"sum,omitempty"`
	Buckets []BucketValue     `json:"buckets,omitempty"`
}

// FamilySnapshot is all series of one metric name.
type FamilySnapshot struct {
	Name    string        `json:"name"`
	Type    string        `json:"type"`
	Help    string        `json:"help,omitempty"`
	Metrics []MetricValue `json:"metrics"`
}

// Snapshot is a JSON-serializable dump of the whole registry, ordered by
// family name and label signature for deterministic output.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot captures every instrument's current value. A nil registry
// yields an empty snapshot. When runtime telemetry is enabled, the
// runtime instruments are refreshed first, so snapshots (and the
// Prometheus exposition built on them) always carry current values.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.refreshRuntime()
	// One locked pass copies everything the map and family structs can
	// mutate under concurrent registration (the series maps and the
	// lazily backfilled help strings); instrument values are atomics and
	// are read after unlocking.
	type famView struct {
		name   string
		typ    metricType
		help   string
		series []*series
	}
	r.mu.Lock()
	fams := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		fv := famView{name: f.name, typ: f.typ, help: f.help,
			series: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			fv.series = append(fv.series, s)
		}
		fams = append(fams, fv)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ.String(), Help: f.help}
		sers := f.series
		sort.Slice(sers, func(i, j int) bool { return sers[i].sig < sers[j].sig })
		for _, s := range sers {
			mv := MetricValue{}
			if len(s.labels) > 0 {
				mv.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					mv.Labels[l.Key] = l.Value
				}
			}
			switch f.typ {
			case typeCounter:
				mv.Value = float64(s.c.Value())
			case typeGauge:
				mv.Value = s.g.Value()
			case typeHistogram:
				mv.Count = s.h.Count()
				mv.Sum = s.h.Sum()
				var cum uint64
				for i := 0; i <= HistogramBuckets; i++ {
					n := s.h.Bucket(i)
					cum += n
					// Skip runs of empty buckets to keep snapshots small;
					// the first and overflow buckets always appear so the
					// bucket list is never empty and ends at +Inf.
					if n == 0 && i != 0 && i != HistogramBuckets {
						continue
					}
					mv.Buckets = append(mv.Buckets, BucketValue{
						UpperBound: BucketUpperBound(i),
						Cumulative: cum,
					})
				}
			}
			fs.Metrics = append(fs.Metrics, mv)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
