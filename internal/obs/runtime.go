package obs

import "runtime"

// Go runtime metric families, registered by Registry.EnableRuntime.
const (
	// MetricRuntimeHeapBytes is the live heap size (runtime MemStats
	// HeapAlloc), a gauge refreshed at snapshot time.
	MetricRuntimeHeapBytes = "qvisor_runtime_heap_bytes"
	// MetricRuntimeGCTotal counts completed garbage-collection cycles.
	MetricRuntimeGCTotal = "qvisor_runtime_gc_cycles_total"
	// MetricRuntimeGoroutines is the current goroutine count.
	MetricRuntimeGoroutines = "qvisor_runtime_goroutines"
)

// EnableRuntime opts the registry into Go runtime telemetry: heap bytes,
// garbage-collection cycles, and goroutine count. The instruments are
// refreshed lazily on every Snapshot (and therefore on every Prometheus
// exposition), so enabling them adds no background work and nothing to
// the data path — the runtime is only probed when somebody looks.
// Idempotent; a nil registry ignores the call.
func (r *Registry) EnableRuntime() {
	if r == nil {
		return
	}
	heap := r.Gauge(MetricRuntimeHeapBytes,
		"Live heap bytes (runtime.MemStats.HeapAlloc), sampled at snapshot time.")
	goroutines := r.Gauge(MetricRuntimeGoroutines,
		"Goroutines alive, sampled at snapshot time.")
	gc := r.Counter(MetricRuntimeGCTotal,
		"Completed GC cycles since the registry enabled runtime telemetry.")
	// Baseline the GC counter so it reports cycles observed from enable
	// time onward, keeping it monotone across Snapshot calls.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	r.mu.Lock()
	if !r.rtEnabled {
		r.rtHeap, r.rtGoroutines, r.rtGC = heap, goroutines, gc
		r.rtLastGC = m.NumGC
		r.rtEnabled = true
	}
	r.mu.Unlock()
}

// refreshRuntime re-probes the runtime instruments; a no-op unless
// EnableRuntime was called.
func (r *Registry) refreshRuntime() {
	r.mu.Lock()
	enabled := r.rtEnabled
	last := r.rtLastGC
	heap, goroutines, gc := r.rtHeap, r.rtGoroutines, r.rtGC
	r.mu.Unlock()
	if !enabled {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	heap.Set(float64(m.HeapAlloc))
	goroutines.Set(float64(runtime.NumGoroutine()))
	if d := m.NumGC - last; d > 0 {
		gc.Add(uint64(d))
		r.mu.Lock()
		if m.NumGC > r.rtLastGC {
			r.rtLastGC = m.NumGC
		}
		r.mu.Unlock()
	}
}
