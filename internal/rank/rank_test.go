package rank

import (
	"testing"
	"testing/quick"

	"qvisor/internal/sim"
)

func TestBounds(t *testing.T) {
	b := Bounds{10, 20}
	if b.Span() != 10 {
		t.Fatalf("Span = %d, want 10", b.Span())
	}
	if !b.Contains(10) || !b.Contains(20) || b.Contains(9) || b.Contains(21) {
		t.Fatal("Contains wrong at edges")
	}
	if b.Clamp(5) != 10 || b.Clamp(25) != 20 || b.Clamp(15) != 15 {
		t.Fatal("Clamp wrong")
	}
	if b.String() != "[10,20]" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestFlowRemaining(t *testing.T) {
	f := &Flow{Size: 100, Sent: 30}
	if f.Remaining() != 70 {
		t.Fatalf("Remaining = %d, want 70", f.Remaining())
	}
	f.Sent = 150
	if f.Remaining() != 0 {
		t.Fatalf("over-sent Remaining = %d, want 0", f.Remaining())
	}
	if (&Flow{}).Remaining() != 0 {
		t.Fatal("unknown-size Remaining should be 0")
	}
}

func TestPFabricRanksByRemaining(t *testing.T) {
	r := &PFabric{}
	f := &Flow{ID: 1, Size: 1000}
	if got := r.Rank(0, f, 100); got != 1000 {
		t.Fatalf("initial rank = %d, want 1000", got)
	}
	f.Sent = 600
	if got := r.Rank(0, f, 100); got != 400 {
		t.Fatalf("rank after progress = %d, want 400", got)
	}
}

func TestPFabricUnknownSizeIsWorst(t *testing.T) {
	r := &PFabric{MaxFlowBytes: 5000}
	if got := r.Rank(0, &Flow{ID: 1}, 100); got != 5000 {
		t.Fatalf("unknown-size rank = %d, want bound 5000", got)
	}
}

func TestPFabricClampsToBounds(t *testing.T) {
	r := &PFabric{MaxFlowBytes: 100}
	f := &Flow{ID: 1, Size: 1 << 40}
	if got := r.Rank(0, f, 0); got != 100 {
		t.Fatalf("huge flow rank = %d, want clamp 100", got)
	}
}

func TestSRPTNameDiffers(t *testing.T) {
	if (&SRPT{}).Name() != "srpt" || (&PFabric{}).Name() != "pfabric" {
		t.Fatal("names wrong")
	}
}

func TestSJF(t *testing.T) {
	r := &SJF{}
	a := &Flow{ID: 1, Size: 100, Sent: 90}
	b := &Flow{ID: 2, Size: 200}
	if r.Rank(0, a, 0) >= r.Rank(0, b, 0) {
		t.Fatal("SJF must rank smaller total size better regardless of progress")
	}
	if r.Rank(0, &Flow{}, 0) != r.Bounds().Hi {
		t.Fatal("unknown size ranks worst")
	}
}

func TestLAS(t *testing.T) {
	r := &LAS{}
	young := &Flow{ID: 1, Sent: 10}
	old := &Flow{ID: 2, Sent: 100000}
	if r.Rank(0, young, 0) >= r.Rank(0, old, 0) {
		t.Fatal("LAS must favor flows with less attained service")
	}
}

func TestEDFSlack(t *testing.T) {
	r := &EDF{}
	f := &Flow{ID: 1, Deadline: 10 * sim.Millisecond}
	if got := r.Rank(0, f, 0); got != 10000 {
		t.Fatalf("slack at t=0: %d µs, want 10000", got)
	}
	if got := r.Rank(4*sim.Millisecond, f, 0); got != 6000 {
		t.Fatalf("slack at t=4ms: %d µs, want 6000", got)
	}
	// Past deadline: most urgent.
	if got := r.Rank(20*sim.Millisecond, f, 0); got != 0 {
		t.Fatalf("past-deadline rank = %d, want 0", got)
	}
}

func TestEDFNoDeadlineIsWorst(t *testing.T) {
	r := &EDF{}
	if got := r.Rank(0, &Flow{ID: 1}, 0); got != r.Bounds().Hi {
		t.Fatalf("no-deadline rank = %d, want %d", got, r.Bounds().Hi)
	}
}

func TestEDFOrderMatchesAbsoluteDeadlines(t *testing.T) {
	// At a common instant, slack order equals absolute-deadline order.
	r := &EDF{}
	now := 3 * sim.Millisecond
	early := &Flow{ID: 1, Deadline: 5 * sim.Millisecond}
	late := &Flow{ID: 2, Deadline: 9 * sim.Millisecond}
	if r.Rank(now, early, 0) >= r.Rank(now, late, 0) {
		t.Fatal("earlier deadline must rank better")
	}
}

func TestFCFS(t *testing.T) {
	r := FCFS{}
	if r.Rank(123, &Flow{ID: 1}, 10) != 0 || r.Bounds() != (Bounds{0, 0}) {
		t.Fatal("FCFS must rank constant 0")
	}
}

func TestSTFQFairInterleaving(t *testing.T) {
	r := NewSTFQ()
	a := &Flow{ID: 1}
	b := &Flow{ID: 2}
	// Two backlogged flows sending 100-byte packets starting at vtime 0:
	// start tags must interleave 0,0,100,100,200,200...
	ra1 := r.Rank(0, a, 100)
	rb1 := r.Rank(0, b, 100)
	ra2 := r.Rank(0, a, 100)
	rb2 := r.Rank(0, b, 100)
	if ra1 != 0 || rb1 != 0 || ra2 != 100 || rb2 != 100 {
		t.Fatalf("start tags = %d,%d,%d,%d want 0,0,100,100", ra1, rb1, ra2, rb2)
	}
}

func TestSTFQWeights(t *testing.T) {
	r := NewSTFQ()
	heavy := &Flow{ID: 1, Weight: 2}
	light := &Flow{ID: 2, Weight: 1}
	r.Rank(0, heavy, 100) // finish advances 50
	r.Rank(0, light, 100) // finish advances 100
	if got := r.Rank(0, heavy, 100); got != 50 {
		t.Fatalf("weight-2 second start = %d, want 50", got)
	}
	if got := r.Rank(0, light, 100); got != 100 {
		t.Fatalf("weight-1 second start = %d, want 100", got)
	}
}

func TestSTFQVirtualTimeAdvance(t *testing.T) {
	r := NewSTFQ()
	f := &Flow{ID: 1}
	r.Rank(0, f, 100)
	r.Rank(0, f, 100)
	r.OnTransmit(100)
	if r.VirtualTime() != 100 {
		t.Fatalf("vtime = %d, want 100", r.VirtualTime())
	}
	// A new flow starting now gets start tag >= vtime, i.e. relative 0.
	g := &Flow{ID: 2}
	if got := r.Rank(0, g, 100); got != 0 {
		t.Fatalf("new flow relative start = %d, want 0", got)
	}
	// Virtual time never moves backwards.
	r.OnTransmit(-50)
	if r.VirtualTime() != 100 {
		t.Fatalf("vtime moved backwards: %d", r.VirtualTime())
	}
}

func TestSTFQRelease(t *testing.T) {
	r := NewSTFQ()
	f := &Flow{ID: 1}
	r.Rank(0, f, 100)
	r.Release(1)
	// After release, the flow re-registers at the virtual time floor.
	if got := r.Rank(0, f, 100); got != 0 {
		t.Fatalf("released flow rank = %d, want 0", got)
	}
}

func TestSTFQNewFlowCannotBackdate(t *testing.T) {
	// A flow arriving after vtime advanced must not get a lower start tag
	// than the current virtual time.
	r := NewSTFQ()
	a := &Flow{ID: 1}
	for i := 0; i < 10; i++ {
		r.Rank(0, a, 1000)
	}
	r.OnTransmit(5000)
	late := &Flow{ID: 2}
	if got := r.Rank(0, late, 100); got < 0 {
		t.Fatalf("late flow got negative relative rank %d", got)
	}
}

func TestFQName(t *testing.T) {
	if NewFQ().Name() != "fq" || NewSTFQ().Name() != "stfq" {
		t.Fatal("names wrong")
	}
	var zero STFQ
	if zero.Name() != "stfq" {
		t.Fatal("zero-value STFQ name")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pfabric", "srpt", "sjf", "las", "edf", "fcfs", "stfq", "fq"} {
		r, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should fail")
	}
}

// TestPropertyRanksWithinBounds: every ranker emits ranks inside its
// declared bounds for arbitrary flow states — the contract QVISOR's static
// analysis depends on.
func TestPropertyRanksWithinBounds(t *testing.T) {
	rankers := []Ranker{
		&PFabric{}, &SRPT{}, &SJF{}, &LAS{}, &EDF{}, FCFS{}, NewSTFQ(),
	}
	for _, r := range rankers {
		r := r
		f := func(size, sent uint32, deadlineUs uint32, nowUs uint32, payload uint16) bool {
			fl := &Flow{
				ID:       1,
				Size:     int64(size),
				Sent:     int64(sent),
				Deadline: sim.Time(deadlineUs) * sim.Microsecond,
			}
			got := r.Rank(sim.Time(nowUs)*sim.Microsecond, fl, int(payload))
			return r.Bounds().Contains(got)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

// TestPropertyPFabricMonotone: more progress never worsens the rank.
func TestPropertyPFabricMonotone(t *testing.T) {
	r := &PFabric{}
	f := func(size uint32, sentA, sentB uint32) bool {
		if sentA > sentB {
			sentA, sentB = sentB, sentA
		}
		fa := &Flow{ID: 1, Size: int64(size), Sent: int64(sentA)}
		fb := &Flow{ID: 1, Size: int64(size), Sent: int64(sentB)}
		return r.Rank(0, fa, 0) >= r.Rank(0, fb, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPFabricRank(b *testing.B) {
	r := &PFabric{}
	f := &Flow{ID: 1, Size: 1 << 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Sent = int64(i % (1 << 20))
		r.Rank(0, f, 1500)
	}
}

func BenchmarkSTFQRank(b *testing.B) {
	r := NewSTFQ()
	flows := make([]*Flow, 64)
	for i := range flows {
		flows[i] = &Flow{ID: uint64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rk := r.Rank(0, flows[i%64], 1500)
		if i%8 == 0 {
			r.OnTransmit(rk)
		}
	}
}

func TestLSTFSlack(t *testing.T) {
	r := &LSTF{RefBitsPerSec: 1e9}
	// 10 ms deadline, 125000 bytes remaining = 1 ms of service at 1 Gbps:
	// slack = 10ms - 1ms = 9ms = 9000 µs.
	f := &Flow{ID: 1, Size: 125000, Deadline: 10 * sim.Millisecond}
	if got := r.Rank(0, f, 0); got != 9000 {
		t.Fatalf("LSTF slack = %d µs, want 9000", got)
	}
	// Behind schedule: negative slack clamps to 0.
	late := &Flow{ID: 2, Size: 10_000_000, Deadline: sim.Millisecond}
	if got := r.Rank(0, late, 0); got != 0 {
		t.Fatalf("late LSTF rank = %d, want 0", got)
	}
	if got := r.Rank(0, &Flow{ID: 3}, 0); got != r.Bounds().Hi {
		t.Fatalf("no-deadline LSTF rank = %d, want bound", got)
	}
}

func TestLSTFBeatsEDFOnLargeRemainder(t *testing.T) {
	// Same deadline, different remaining work: LSTF prioritizes the flow
	// with more left to do, EDF treats them equally.
	lstf := &LSTF{RefBitsPerSec: 1e9}
	edf := &EDF{}
	big := &Flow{ID: 1, Size: 1_000_000, Deadline: 10 * sim.Millisecond}
	small := &Flow{ID: 2, Size: 1_000, Deadline: 10 * sim.Millisecond}
	if lstf.Rank(0, big, 0) >= lstf.Rank(0, small, 0) {
		t.Fatal("LSTF must rank the behind-schedule flow better")
	}
	if edf.Rank(0, big, 0) != edf.Rank(0, small, 0) {
		t.Fatal("EDF should not distinguish them")
	}
}

func TestFIFOPlusOlderFlowsWin(t *testing.T) {
	r := &FIFOPlus{}
	old := &Flow{ID: 1, Arrival: 0}
	young := &Flow{ID: 2, Arrival: 50 * sim.Millisecond}
	now := 60 * sim.Millisecond
	if r.Rank(now, old, 0) >= r.Rank(now, young, 0) {
		t.Fatal("FIFO+ must rank older flows better")
	}
}

func TestFIFOPlusBounds(t *testing.T) {
	r := &FIFOPlus{Horizon: 10 * sim.Millisecond}
	// Ancient flow clamps to 0; future arrival clamps to the bound.
	ancient := &Flow{ID: 1, Arrival: 0}
	if got := r.Rank(sim.Second, ancient, 0); got != 0 {
		t.Fatalf("ancient rank = %d, want 0", got)
	}
	future := &Flow{ID: 2, Arrival: 2 * sim.Second}
	if got := r.Rank(sim.Second, future, 0); got != r.Bounds().Hi {
		t.Fatalf("future rank = %d, want bound %d", got, r.Bounds().Hi)
	}
}

func TestByNameExtended(t *testing.T) {
	for _, name := range []string{"lstf", "fifo+"} {
		r, err := ByName(name)
		if err != nil || r.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, r, err)
		}
	}
}

func TestLSTFWithinBoundsProperty(t *testing.T) {
	r := &LSTF{}
	f := func(size, sent uint32, deadlineUs, nowUs uint32) bool {
		fl := &Flow{ID: 1, Size: int64(size), Sent: int64(sent),
			Deadline: sim.Time(deadlineUs) * sim.Microsecond}
		return r.Bounds().Contains(r.Rank(sim.Time(nowUs)*sim.Microsecond, fl, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
