// Package rank implements the tenant-side scheduling algorithms of the
// QVISOR paper as rank functions: pFabric/SRPT, EDF, SJF, LAS, FCFS, and
// start-time fair queuing (the practical form of bit-by-bit fair queuing).
//
// A rank function maps each outgoing packet to an integer priority — lower
// ranks are scheduled first (§3.1: "packet ranks define the priority with
// which packets should be scheduled based on the rank function picked by
// the tenant"). Ranks are computed at the end host or an upstream switch,
// before the packet reaches QVISOR's pre-processor.
//
// Every ranker declares static Bounds on the ranks it emits. Bounded ranks
// are what makes QVISOR's static worst-case analysis possible ("if the rank
// distributions are bounded and known in advance, we can implement most
// priority operations by just applying shifts", §3.2). Rankers whose
// natural rank is unbounded (deadlines, virtual times) emit ranks relative
// to a moving floor (time-to-deadline, start-tag minus virtual time), which
// bounds them without disturbing the relative order of concurrently queued
// packets.
package rank

import (
	"fmt"

	"qvisor/internal/sim"
)

// Flow carries the per-flow state rank functions read. The transport (or
// end-host stack) owns and updates it.
type Flow struct {
	// ID is the flow identifier.
	ID uint64
	// Size is the flow's total size in bytes, when known a priori
	// (pFabric-style "flow size aware" scheduling). Zero means unknown.
	Size int64
	// Sent is the number of payload bytes handed to the network so far
	// (first transmissions only; retransmissions do not advance it).
	Sent int64
	// Weight is the fair-queuing weight. Zero means 1.
	Weight float64
	// Deadline is the absolute completion deadline, for EDF. Zero means
	// no deadline.
	Deadline sim.Time
	// Arrival is when the flow started.
	Arrival sim.Time
}

func (f *Flow) weight() float64 {
	if f.Weight <= 0 {
		return 1
	}
	return f.Weight
}

// Remaining returns the bytes not yet sent, or 0 when unknown/complete.
func (f *Flow) Remaining() int64 {
	if f.Size <= 0 {
		return 0
	}
	r := f.Size - f.Sent
	if r < 0 {
		return 0
	}
	return r
}

// Bounds is the closed rank interval a ranker emits into.
type Bounds struct {
	Lo, Hi int64
}

// Span returns the width of the interval.
func (b Bounds) Span() int64 { return b.Hi - b.Lo }

// Contains reports whether r lies within the bounds.
func (b Bounds) Contains(r int64) bool { return r >= b.Lo && r <= b.Hi }

// Clamp forces r into the bounds.
func (b Bounds) Clamp(r int64) int64 {
	if r < b.Lo {
		return b.Lo
	}
	if r > b.Hi {
		return b.Hi
	}
	return r
}

// String implements fmt.Stringer.
func (b Bounds) String() string { return fmt.Sprintf("[%d,%d]", b.Lo, b.Hi) }

// Ranker computes the scheduling rank of an outgoing packet. Lower ranks are
// scheduled earlier. Implementations may keep per-flow state; they are not
// safe for concurrent use.
type Ranker interface {
	// Name returns the algorithm identifier (e.g. "pfabric").
	Name() string
	// Rank returns the rank for a packet of the given payload size
	// belonging to flow f, emitted at time now. Ranks outside Bounds are
	// clamped by callers.
	Rank(now sim.Time, f *Flow, payload int) int64
	// Bounds declares the rank interval this ranker emits into.
	Bounds() Bounds
}

// FlowReleaser is implemented by rankers that keep per-flow state and want
// to be told when a flow completes.
type FlowReleaser interface {
	Release(flowID uint64)
}

// TransmitObserver is implemented by rankers (fair queuing) that track the
// scheduler's virtual time and must observe transmissions.
type TransmitObserver interface {
	// OnTransmit reports that a packet with the given rank started
	// service.
	OnTransmit(rank int64)
}
