package rank

import (
	"fmt"

	"qvisor/internal/sim"
)

// PFabric ranks packets by the flow's remaining size in bytes (Alizadeh et
// al., SIGCOMM 2013): shortest remaining processing time, the policy tenant
// T1 uses in the paper to minimize flow completion times. Flows with
// unknown size rank at the upper bound.
type PFabric struct {
	// MaxFlowBytes caps the declared rank range. Flows larger than this
	// clamp to the bound. Zero means DefaultMaxFlowBytes.
	MaxFlowBytes int64
}

// DefaultMaxFlowBytes bounds pFabric ranks when no cap is configured:
// 1 GiB, larger than any flow in the embedded workloads.
const DefaultMaxFlowBytes = 1 << 30

func (r *PFabric) cap() int64 {
	if r.MaxFlowBytes <= 0 {
		return DefaultMaxFlowBytes
	}
	return r.MaxFlowBytes
}

// Name implements Ranker.
func (r *PFabric) Name() string { return "pfabric" }

// Bounds implements Ranker.
func (r *PFabric) Bounds() Bounds { return Bounds{0, r.cap()} }

// Rank implements Ranker: remaining flow bytes.
func (r *PFabric) Rank(_ sim.Time, f *Flow, _ int) int64 {
	if f.Size <= 0 {
		return r.cap() // unknown size: lowest priority
	}
	return r.Bounds().Clamp(f.Remaining())
}

// SRPT is shortest remaining processing time — identical ranking to
// PFabric, kept as a distinct name because the paper cites both lineages
// ([5] pFabric, [26] SRPT).
type SRPT struct{ PFabric }

// Name implements Ranker.
func (r *SRPT) Name() string { return "srpt" }

// SJF ranks by total flow size (shortest job first): size-aware but not
// progress-aware.
type SJF struct {
	// MaxFlowBytes caps the declared rank range; zero means
	// DefaultMaxFlowBytes.
	MaxFlowBytes int64
}

func (r *SJF) cap() int64 {
	if r.MaxFlowBytes <= 0 {
		return DefaultMaxFlowBytes
	}
	return r.MaxFlowBytes
}

// Name implements Ranker.
func (r *SJF) Name() string { return "sjf" }

// Bounds implements Ranker.
func (r *SJF) Bounds() Bounds { return Bounds{0, r.cap()} }

// Rank implements Ranker: total flow size.
func (r *SJF) Rank(_ sim.Time, f *Flow, _ int) int64 {
	if f.Size <= 0 {
		return r.cap()
	}
	return r.Bounds().Clamp(f.Size)
}

// LAS ranks by bytes already sent (least attained service): approximates
// SRPT without knowing flow sizes, as in information-agnostic schedulers
// ([6] PIAS).
type LAS struct {
	// MaxFlowBytes caps the declared rank range; zero means
	// DefaultMaxFlowBytes.
	MaxFlowBytes int64
}

func (r *LAS) cap() int64 {
	if r.MaxFlowBytes <= 0 {
		return DefaultMaxFlowBytes
	}
	return r.MaxFlowBytes
}

// Name implements Ranker.
func (r *LAS) Name() string { return "las" }

// Bounds implements Ranker.
func (r *LAS) Bounds() Bounds { return Bounds{0, r.cap()} }

// Rank implements Ranker: attained service.
func (r *LAS) Rank(_ sim.Time, f *Flow, _ int) int64 {
	return r.Bounds().Clamp(f.Sent)
}

// EDF ranks by time to deadline (earliest deadline first, [10]) — the
// policy tenant T2 uses for deadline-constrained flows. The rank is the
// remaining slack in microseconds, clamped to [0, MaxSlack]: among packets
// queued at the same instant, slack order equals absolute-deadline order,
// and unlike absolute deadlines the slack is bounded, which QVISOR's static
// analysis needs. Flows without a deadline rank at the upper bound.
type EDF struct {
	// MaxSlack is the largest slack representable; deadlines further out
	// clamp to it. Zero means DefaultMaxSlack.
	MaxSlack sim.Time
}

// DefaultMaxSlack bounds EDF ranks at 100 ms of slack.
const DefaultMaxSlack = 100 * sim.Millisecond

func (r *EDF) maxSlack() sim.Time {
	if r.MaxSlack <= 0 {
		return DefaultMaxSlack
	}
	return r.MaxSlack
}

// Name implements Ranker.
func (r *EDF) Name() string { return "edf" }

// Bounds implements Ranker: slack in microseconds.
func (r *EDF) Bounds() Bounds {
	return Bounds{0, int64(r.maxSlack() / sim.Microsecond)}
}

// Rank implements Ranker: microseconds of slack until the deadline.
// Past-deadline packets rank 0 (most urgent).
func (r *EDF) Rank(now sim.Time, f *Flow, _ int) int64 {
	if f.Deadline == 0 {
		return r.Bounds().Hi
	}
	slack := f.Deadline - now
	if slack < 0 {
		slack = 0
	}
	return r.Bounds().Clamp(int64(slack / sim.Microsecond))
}

// FCFS ranks every packet identically, so a PIFO's FIFO tie-break yields
// first-come first-served. Useful as a null policy and in tests.
type FCFS struct{}

// Name implements Ranker.
func (FCFS) Name() string { return "fcfs" }

// Bounds implements Ranker.
func (FCFS) Bounds() Bounds { return Bounds{0, 0} }

// Rank implements Ranker.
func (FCFS) Rank(sim.Time, *Flow, int) int64 { return 0 }

// STFQ implements start-time fair queuing (Goyal et al., SIGCOMM 1996), the
// practical form of bit-by-bit fair queuing [11] and the example fair
// policy in §3.1 (tenant T2 = {P2, STFQ}). Each flow's packet gets the
// start tag max(virtual time, flow's last finish tag); the finish tag
// advances by payload/weight. The emitted rank is the start tag relative to
// the current virtual time, which is bounded by the configured maximum
// backlog and preserves the order of concurrently queued packets.
//
// STFQ keeps per-flow finish tags; call Release when a flow ends. Connect
// OnTransmit to the scheduler's dequeue to advance virtual time; if never
// called, virtual time stays at the minimum and ranks grow toward the
// bound (they clamp, degrading to coarse fairness rather than failing).
type STFQ struct {
	// MaxBacklog bounds the relative start tags, in virtual bytes
	// (bytes/weight). Zero means DefaultMaxBacklog.
	MaxBacklog int64

	vtime  int64
	finish map[uint64]int64
	name   string
}

// DefaultMaxBacklog bounds STFQ ranks: 16 MiB of virtual backlog per flow.
const DefaultMaxBacklog = 16 << 20

// NewSTFQ returns an STFQ ranker.
func NewSTFQ() *STFQ { return &STFQ{name: "stfq"} }

// NewFQ returns start-time fair queuing under the name "fq" — the paper
// refers to tenant T3's policy simply as Fair Queuing.
func NewFQ() *STFQ { return &STFQ{name: "fq"} }

func (r *STFQ) maxBacklog() int64 {
	if r.MaxBacklog <= 0 {
		return DefaultMaxBacklog
	}
	return r.MaxBacklog
}

// Name implements Ranker.
func (r *STFQ) Name() string {
	if r.name == "" {
		return "stfq"
	}
	return r.name
}

// Bounds implements Ranker.
func (r *STFQ) Bounds() Bounds { return Bounds{0, r.maxBacklog()} }

// Rank implements Ranker: relative start tag.
func (r *STFQ) Rank(_ sim.Time, f *Flow, payload int) int64 {
	if r.finish == nil {
		r.finish = make(map[uint64]int64)
	}
	start := r.vtime
	if fin, ok := r.finish[f.ID]; ok && fin > start {
		start = fin
	}
	r.finish[f.ID] = start + int64(float64(payload)/f.weight())
	return r.Bounds().Clamp(start - r.vtime)
}

// OnTransmit implements TransmitObserver: virtual time advances to the
// start tag of the packet entering service. The rank passed is relative;
// it is added to the current virtual time.
func (r *STFQ) OnTransmit(relRank int64) {
	v := r.vtime + relRank
	if v > r.vtime {
		r.vtime = v
	}
}

// Release implements FlowReleaser.
func (r *STFQ) Release(flowID uint64) { delete(r.finish, flowID) }

// VirtualTime exposes the current virtual time for tests.
func (r *STFQ) VirtualTime() int64 { return r.vtime }

// ByName constructs a ranker from its algorithm name. Recognized names:
// pfabric, srpt, sjf, las, edf, lstf, fifo+, fcfs, stfq, fq.
func ByName(name string) (Ranker, error) {
	switch name {
	case "lstf":
		return &LSTF{}, nil
	case "fifo+":
		return &FIFOPlus{}, nil
	case "pfabric":
		return &PFabric{}, nil
	case "srpt":
		return &SRPT{}, nil
	case "sjf":
		return &SJF{}, nil
	case "las":
		return &LAS{}, nil
	case "edf":
		return &EDF{}, nil
	case "fcfs":
		return FCFS{}, nil
	case "stfq":
		return NewSTFQ(), nil
	case "fq":
		return NewFQ(), nil
	default:
		return nil, fmt.Errorf("rank: unknown algorithm %q", name)
	}
}
