package rank

import "qvisor/internal/sim"

// LSTF ranks packets by least slack time first (Mittal et al., "Universal
// Packet Scheduling", NSDI 2016 — reference [22] of the QVISOR paper): the
// slack is the time remaining until the deadline minus the time still
// needed to transmit the rest of the flow. A flow that is behind schedule
// (low or negative slack) ranks ahead of one with time to spare, which is
// what makes LSTF a near-universal replacement for many policies.
type LSTF struct {
	// MaxSlack bounds the emitted ranks; zero means DefaultMaxSlack.
	MaxSlack sim.Time
	// RefBitsPerSec is the reference transmission rate used to convert
	// remaining bytes into remaining service time. Zero means 1 Gbps
	// (the paper's access-link rate).
	RefBitsPerSec float64
}

func (r *LSTF) maxSlack() sim.Time {
	if r.MaxSlack <= 0 {
		return DefaultMaxSlack
	}
	return r.MaxSlack
}

func (r *LSTF) refRate() float64 {
	if r.RefBitsPerSec <= 0 {
		return 1e9
	}
	return r.RefBitsPerSec
}

// Name implements Ranker.
func (r *LSTF) Name() string { return "lstf" }

// Bounds implements Ranker: slack in microseconds.
func (r *LSTF) Bounds() Bounds {
	return Bounds{0, int64(r.maxSlack() / sim.Microsecond)}
}

// Rank implements Ranker: microseconds of slack after accounting for the
// remaining service time. Flows without deadlines rank at the upper bound.
func (r *LSTF) Rank(now sim.Time, f *Flow, _ int) int64 {
	if f.Deadline == 0 {
		return r.Bounds().Hi
	}
	service := sim.Time(float64(f.Remaining()*8) / r.refRate() * 1e9)
	slack := f.Deadline - now - service
	if slack < 0 {
		slack = 0
	}
	return r.Bounds().Clamp(int64(slack / sim.Microsecond))
}

// FIFOPlus implements the FIFO+ policy (Clark, Shenker, Zhang, SIGCOMM
// 1992 — reference [9]): packets are scheduled in order of flow arrival
// time rather than packet arrival time, which shrinks tail latency for
// flows that have already waited. The rank is the flow's age-corrected
// start time relative to a sliding horizon, keeping ranks bounded.
type FIFOPlus struct {
	// Horizon bounds how far back a flow arrival can reach; older flows
	// clamp to rank 0. Zero means DefaultFIFOPlusHorizon.
	Horizon sim.Time
}

// DefaultFIFOPlusHorizon bounds FIFO+ ranks at 1 s of flow age.
const DefaultFIFOPlusHorizon = sim.Second

func (r *FIFOPlus) horizon() sim.Time {
	if r.Horizon <= 0 {
		return DefaultFIFOPlusHorizon
	}
	return r.Horizon
}

// Name implements Ranker.
func (r *FIFOPlus) Name() string { return "fifo+" }

// Bounds implements Ranker.
func (r *FIFOPlus) Bounds() Bounds {
	return Bounds{0, int64(r.horizon() / sim.Microsecond)}
}

// Rank implements Ranker: the flow's arrival offset within the horizon
// window ending now — older flows get lower (better) ranks.
func (r *FIFOPlus) Rank(now sim.Time, f *Flow, _ int) int64 {
	age := now - f.Arrival
	if age < 0 {
		age = 0
	}
	h := r.horizon()
	if age > h {
		age = h
	}
	// Rank = time left before the flow reaches the horizon: a flow that
	// arrived long ago is near 0, a fresh flow near the bound.
	return r.Bounds().Clamp(int64((h - age) / sim.Microsecond))
}
