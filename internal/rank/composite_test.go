package rank

import (
	"strings"
	"testing"
	"testing/quick"

	"qvisor/internal/sim"
)

func TestCompositeValidation(t *testing.T) {
	if _, err := NewComposite(10, nil, nil); err == nil {
		t.Fatal("empty composite accepted")
	}
	if _, err := NewComposite(10, []Ranker{&PFabric{}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := NewComposite(10, []Ranker{&PFabric{}}, []float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewComposite(10, []Ranker{&PFabric{}}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestCompositeSingleComponentPreservesOrder(t *testing.T) {
	c, err := NewComposite(1<<16, []Ranker{&PFabric{MaxFlowBytes: 1 << 20}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	small := &Flow{ID: 1, Size: 1000}
	large := &Flow{ID: 2, Size: 1 << 19}
	if c.Rank(0, small, 0) >= c.Rank(0, large, 0) {
		t.Fatal("composite of one component must preserve its order")
	}
}

func TestCompositeBlendsObjectives(t *testing.T) {
	// 0.7×FQ + 0.3×pFabric: among flows with equal fair-queuing start
	// tags, the shorter flow wins; a flow far behind in fairness loses
	// even if short.
	fq := NewSTFQ()
	fq.MaxBacklog = 1 << 20 // match the pFabric scale so debt is visible
	pf := &PFabric{MaxFlowBytes: 1 << 20}
	c, err := NewComposite(1<<16, []Ranker{fq, pf}, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// Flow 1 short, flow 2 long, both fresh (same FQ start tag ≈ 0).
	shortFresh := &Flow{ID: 1, Size: 1000}
	longFresh := &Flow{ID: 2, Size: 1 << 19}
	rShort := c.Rank(0, shortFresh, 100)
	rLong := c.Rank(0, longFresh, 100)
	if rShort >= rLong {
		t.Fatalf("tie on fairness: short flow must win (%d vs %d)", rShort, rLong)
	}
	// Flow 3 is short but has consumed lots of fair-queuing credit.
	greedy := &Flow{ID: 3, Size: 1000}
	for i := 0; i < 200; i++ {
		fq.Rank(0, greedy, 10000) // burn FQ credit outside the composite
	}
	rGreedy := c.Rank(0, greedy, 100)
	if rGreedy <= rLong {
		t.Fatalf("fairness-indebted short flow should lose to fresh long flow (%d vs %d)",
			rGreedy, rLong)
	}
}

func TestCompositeWithinBounds(t *testing.T) {
	c, err := NewComposite(1024, []Ranker{&PFabric{}, &EDF{}}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(size, sent uint32, deadlineUs, nowUs uint32) bool {
		fl := &Flow{ID: 1, Size: int64(size), Sent: int64(sent),
			Deadline: sim.Time(deadlineUs) * sim.Microsecond}
		return c.Bounds().Contains(c.Rank(sim.Time(nowUs)*sim.Microsecond, fl, 100))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeName(t *testing.T) {
	c, err := NewComposite(16, []Ranker{NewFQ(), &PFabric{}}, []float64{7, 3})
	if err != nil {
		t.Fatal(err)
	}
	name := c.Name()
	if !strings.Contains(name, "0.70*fq") || !strings.Contains(name, "0.30*pfabric") {
		t.Fatalf("name = %q", name)
	}
}

func TestCompositeForwardsStateHooks(t *testing.T) {
	fq := NewSTFQ()
	c, err := NewComposite(16, []Ranker{fq, &PFabric{}}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := &Flow{ID: 42}
	c.Rank(0, f, 100)
	c.OnTransmit(5)
	if fq.VirtualTime() == 0 {
		t.Fatal("OnTransmit not forwarded to FQ component")
	}
	c.Release(42)
	if got := fq.Rank(0, f, 100); got != 0 {
		t.Fatalf("Release not forwarded: rank %d", got)
	}
}
