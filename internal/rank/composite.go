package rank

import (
	"fmt"
	"strings"

	"qvisor/internal/sim"
)

// Composite blends several rank functions into one multi-objective policy
// — the §5 direction "could we achieve multiple objectives simultaneously
// on the same traffic?". Each component's rank is normalized to [0, 1]
// over its declared bounds, combined as a weighted sum, and quantized to
// OutLevels discrete ranks.
//
// Example: 0.7×FQ + 0.3×pFabric enforces fairness while still biasing
// towards short flows, the paper's own example of implicit multi-objective
// behaviour ("Fair Queuing schemes enforce fairness, but also help in
// reducing FCTs, since they implicitly prioritize short flows").
type Composite struct {
	components []Ranker
	weights    []float64
	levels     int64
	name       string
}

// DefaultCompositeLevels is the output granularity when not configured.
const DefaultCompositeLevels = 1 << 16

// NewComposite builds a multi-objective ranker. Weights must be positive;
// they are normalized internally. levels <= 0 selects
// DefaultCompositeLevels.
func NewComposite(levels int64, components []Ranker, weights []float64) (*Composite, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("rank: composite needs at least one component")
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("rank: %d components but %d weights", len(components), len(weights))
	}
	var total float64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("rank: non-positive weight %v for %s", w, components[i].Name())
		}
		total += w
	}
	if levels <= 0 {
		levels = DefaultCompositeLevels
	}
	norm := make([]float64, len(weights))
	names := make([]string, len(components))
	for i, w := range weights {
		norm[i] = w / total
		names[i] = fmt.Sprintf("%.2f*%s", norm[i], components[i].Name())
	}
	return &Composite{
		components: components,
		weights:    norm,
		levels:     levels,
		name:       "composite(" + strings.Join(names, "+") + ")",
	}, nil
}

// Name implements Ranker.
func (c *Composite) Name() string { return c.name }

// Bounds implements Ranker.
func (c *Composite) Bounds() Bounds { return Bounds{0, c.levels - 1} }

// Rank implements Ranker: the weighted sum of normalized component ranks.
func (c *Composite) Rank(now sim.Time, f *Flow, payload int) int64 {
	var acc float64
	for i, comp := range c.components {
		b := comp.Bounds()
		r := b.Clamp(comp.Rank(now, f, payload))
		span := b.Span()
		if span <= 0 {
			continue
		}
		acc += c.weights[i] * float64(r-b.Lo) / float64(span)
	}
	out := int64(acc * float64(c.levels-1))
	return c.Bounds().Clamp(out)
}

// OnTransmit implements TransmitObserver by forwarding to components that
// track virtual time. The rank passed through is the composite rank, which
// is only meaningful to components as a progress signal; fair components
// in composites should be driven by their own transmit observers where
// exactness matters.
func (c *Composite) OnTransmit(rank int64) {
	for _, comp := range c.components {
		if obs, ok := comp.(TransmitObserver); ok {
			obs.OnTransmit(rank)
		}
	}
}

// Release implements FlowReleaser by forwarding to stateful components.
func (c *Composite) Release(flowID uint64) {
	for _, comp := range c.components {
		if fr, ok := comp.(FlowReleaser); ok {
			fr.Release(flowID)
		}
	}
}
